"""Crash-recoverable sweeps: interrupt anywhere, resume, get identical bytes.

The durability acceptance suite for the checkpoint store.  A sweep killed
with SIGKILL after any completed task — the way a cgroup OOM-killer or a
pulled plug ends a run — must, on re-run over the same store, recompute only
the missing cells and produce results byte-identical to an uninterrupted
sequential run.  Torn cells (the kill landing mid-write, simulated by
truncation faults) must degrade to a recompute with a structured warning,
never to served garbage.  And resuming in process mode must leak no
shared-memory segments, exactly like any other fan-out.

The SIGKILL really is unconditional (``CheckpointFaults.kill_after_store``
fires in whichever process performs the store), so the interrupted leg runs
in a sacrificial subprocess; the resume leg runs in-process where its report
can be inspected.
"""

from __future__ import annotations

import os
import subprocess
import sys
import textwrap
from multiprocessing import shared_memory
from pathlib import Path

import pytest

from repro.datasets import generate_rt_dataset
from repro.engine import (
    CheckpointFaults,
    CheckpointStore,
    ParameterSweep,
    VaryingParameterExperiment,
    WorkerPool,
    transaction_config,
)
from repro.frontend import Session

#: Eight sweep points, matching the chaos suite: every interruption index in
#: 1..8 is a distinct crash site.
CHAOS_SWEEP = ParameterSweep("k", (3, 4, 5, 6, 7, 8, 9, 10))

DATASET_KWARGS = dict(n_records=80, n_items=16, seed=41)


@pytest.fixture(scope="module")
def dataset():
    return generate_rt_dataset(**DATASET_KWARGS)


def fingerprint(sweep_result) -> list[tuple]:
    """Everything a report states except wall-clock times."""
    return [
        (
            report.result.dataset.to_rows(),
            report.result.dataset.schema.names,
            report.utility,
            report.privacy,
            report.are,
            report.generalized_value_frequencies,
            report.item_frequency_errors,
            report.attacks,
        )
        for report in sweep_result.reports
    ]


#: The interrupted leg: a COAT sweep that a SIGKILL ends right after the
#: N-th cell reaches disk.  Regenerates the module dataset from its seed —
#: content-addressed keys care about bytes, not object identity.
KILL_SCRIPT = textwrap.dedent(
    """
    import sys
    from repro.datasets import generate_rt_dataset
    from repro.engine import (
        CheckpointFaults, CheckpointStore, ParameterSweep,
        VaryingParameterExperiment, transaction_config,
    )

    directory, kill_after = sys.argv[1], int(sys.argv[2])
    simulate_attacks = bool(int(sys.argv[3]))
    dataset = generate_rt_dataset(n_records=80, n_items=16, seed=41)
    store = CheckpointStore(
        directory, faults=CheckpointFaults(kill_after_store=kill_after)
    )
    experiment = VaryingParameterExperiment(
        dataset, checkpoint=store, simulate_attacks=simulate_attacks
    )
    experiment.run(
        transaction_config("coat", k=3, m=2),
        ParameterSweep("k", (3, 4, 5, 6, 7, 8, 9, 10)),
    )
    print("survived")  # never reached while kill_after <= task count
    """
)


def run_killed_sweep(
    directory: Path, kill_after: int, simulate_attacks: bool = False
) -> None:
    repo_root = Path(__file__).resolve().parents[2]
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(repo_root / "src")]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    result = subprocess.run(
        [
            sys.executable,
            "-c",
            KILL_SCRIPT,
            str(directory),
            str(kill_after),
            str(int(simulate_attacks)),
        ],
        capture_output=True,
        text=True,
        cwd=repo_root,
        env=env,
        timeout=300,
    )
    # SIGKILL shows as -9 from the child's perspective; a platform without
    # SIGKILL falls back to a hard _exit(137).
    assert result.returncode in (-9, 137), (
        f"expected the injected kill, got rc={result.returncode}; "
        f"stdout={result.stdout!r} stderr={result.stderr!r}"
    )
    assert "survived" not in result.stdout


@pytest.mark.parametrize("kill_after", [1, 3, 8])
def test_sigkill_mid_sweep_resumes_byte_identical(tmp_path, dataset, kill_after):
    """Kill after cell #N; the resume serves N hits, computes the rest, and
    the merged results match an uninterrupted sequential run exactly."""
    config = transaction_config("coat", k=3, m=2)
    reference = fingerprint(
        VaryingParameterExperiment(dataset).run(config, CHAOS_SWEEP)
    )

    directory = tmp_path / "ckpt"
    run_killed_sweep(directory, kill_after)

    # Exactly the completed cells survived the kill — nothing torn, nothing
    # phantom: atomic rename means a cell either fully exists or never did.
    store = CheckpointStore(directory)
    assert len(store.keys()) == kill_after

    resumed = VaryingParameterExperiment(dataset, checkpoint=store).run(
        config, CHAOS_SWEEP
    )
    assert fingerprint(resumed) == reference

    report = resumed.run_report
    assert report is not None
    assert report.checkpoint_counts() == {
        "hit": kill_after,
        "miss": len(CHAOS_SWEEP) - kill_after,
        "corrupt": 0,
    }
    assert report.warnings == []
    assert all(task.completed for task in report.tasks)

    # A third run over the now-complete store is pure hits.
    final = VaryingParameterExperiment(dataset, checkpoint=store).run(
        config, CHAOS_SWEEP
    )
    assert fingerprint(final) == reference
    assert final.run_report.checkpoint_counts()["hit"] == len(CHAOS_SWEEP)


def test_sigkill_attack_sweep_resumes_byte_identical(tmp_path, dataset):
    """The same durability contract with attack simulation folded into the
    cells: the killed-then-resumed sweep serves the attacked reports —
    AttackResult values included — byte-identical to an uninterrupted run."""
    config = transaction_config("coat", k=3, m=2)
    reference = fingerprint(
        VaryingParameterExperiment(dataset, simulate_attacks=True).run(
            config, CHAOS_SWEEP
        )
    )
    assert all(entry[-1] for entry in reference)  # attacks in every report

    directory = tmp_path / "ckpt"
    run_killed_sweep(directory, 4, simulate_attacks=True)
    store = CheckpointStore(directory)
    assert len(store.keys()) == 4

    resumed = VaryingParameterExperiment(
        dataset, checkpoint=store, simulate_attacks=True
    ).run(config, CHAOS_SWEEP)
    assert fingerprint(resumed) == reference
    assert resumed.run_report.checkpoint_counts() == {
        "hit": 4, "miss": 4, "corrupt": 0,
    }


def test_attack_flag_partitions_the_key_space(tmp_path, dataset):
    """Cells computed without attack simulation are never served to a run
    that expects attacked reports (and vice versa): the flag is part of the
    content-addressed key."""
    config = transaction_config("coat", k=3, m=2)
    sweep = ParameterSweep("k", (3, 4))
    store = CheckpointStore(tmp_path / "ckpt")

    VaryingParameterExperiment(dataset, checkpoint=store).run(config, sweep)
    assert len(store.keys()) == 2

    attacked = VaryingParameterExperiment(
        dataset, checkpoint=store, simulate_attacks=True
    ).run(config, sweep)
    assert attacked.run_report.checkpoint_counts() == {
        "hit": 0, "miss": 2, "corrupt": 0,
    }
    assert len(store.keys()) == 4
    assert all(report.attacks for report in attacked.reports)


def test_resume_in_process_mode_serves_hits_and_leaks_nothing(tmp_path, dataset):
    """A sequential half-run resumed under process fan-out: hits are served
    from disk in the orchestrating process, worker segments are unlinked."""
    config = transaction_config("pcta", k=3, m=2)
    reference = fingerprint(
        VaryingParameterExperiment(dataset).run(config, CHAOS_SWEEP)
    )

    store = CheckpointStore(tmp_path / "ckpt")
    half = ParameterSweep("k", CHAOS_SWEEP.values[:4])
    VaryingParameterExperiment(dataset, checkpoint=store).run(config, half)
    assert len(store.keys()) == 4

    with WorkerPool(max_workers=2) as pool:
        resumed = VaryingParameterExperiment(
            dataset, mode="process", pool=pool, checkpoint=store
        ).run(config, CHAOS_SWEEP)
        segments = pool.segment_names()

    assert fingerprint(resumed) == reference
    assert resumed.run_report.checkpoint_counts() == {
        "hit": 4, "miss": 4, "corrupt": 0,
    }
    for name in segments:
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)


def test_torn_write_degrades_to_recompute_with_warning(tmp_path, dataset):
    """A truncation fault models the kill landing mid-write on a filesystem
    that reordered the rename: the torn cell is detected, warned about,
    recomputed, and repaired — and never changes the results."""
    config = transaction_config("coat", k=3, m=2)
    reference = fingerprint(
        VaryingParameterExperiment(dataset).run(config, CHAOS_SWEEP)
    )

    directory = tmp_path / "ckpt"
    faulted = CheckpointStore(
        directory, faults=CheckpointFaults(truncate_after_store=3, truncate_to=7)
    )
    first = VaryingParameterExperiment(dataset, checkpoint=faulted).run(
        config, CHAOS_SWEEP
    )
    assert fingerprint(first) == reference  # the tear is on disk, not in RAM

    clean = CheckpointStore(directory)
    resumed = VaryingParameterExperiment(dataset, checkpoint=clean).run(
        config, CHAOS_SWEEP
    )
    assert fingerprint(resumed) == reference

    report = resumed.run_report
    assert report.checkpoint_counts() == {"hit": 7, "miss": 0, "corrupt": 1}
    assert len(report.warnings) == 1
    assert "damaged" in report.warnings[0]
    assert report.checkpoint_counts() == report.summary()["checkpoints"]

    # The recompute repaired the cell: the next run is pure hits.
    final = VaryingParameterExperiment(dataset, checkpoint=clean).run(
        config, CHAOS_SWEEP
    )
    assert final.run_report.checkpoint_counts() == {
        "hit": 8, "miss": 0, "corrupt": 0,
    }


def test_session_comparison_resumes_across_sessions(tmp_path, dataset):
    """The frontend path: a comparison checkpointed through one Session is
    served entirely from disk by a second Session over the same directory."""
    configs = [
        transaction_config("coat", k=3, m=2),
        transaction_config("pcta", k=3, m=2),
    ]

    first = Session(dataset).with_checkpoints(tmp_path / "ckpt")
    cold = first.compare(configs, "k", 3, 5, 1)
    assert cold.run_report is not None
    counts = cold.run_report.checkpoint_counts()
    assert counts["hit"] == 0 and counts["miss"] >= len(configs)

    second = Session(dataset).with_checkpoints(tmp_path / "ckpt")
    warm = second.compare(configs, "k", 3, 5, 1)
    warm_counts = warm.run_report.checkpoint_counts()
    assert warm_counts["miss"] == 0 and warm_counts["corrupt"] == 0
    assert warm_counts["hit"] == len(configs)

    assert [fingerprint(sweep) for sweep in warm.sweeps] == [
        fingerprint(sweep) for sweep in cold.sweeps
    ]


def test_dataset_mutation_invalidates_every_cell(tmp_path, dataset):
    """Stale cells are unreachable by construction: editing the dataset
    changes its fingerprint, hence every content-addressed key."""
    config = transaction_config("coat", k=3, m=2)
    sweep = ParameterSweep("k", (3, 4))
    store = CheckpointStore(tmp_path / "ckpt")

    edited = generate_rt_dataset(**DATASET_KWARGS)
    VaryingParameterExperiment(edited, checkpoint=store).run(config, sweep)
    assert len(store.keys()) == 2

    edited.set_value(0, edited.schema.names[0], 99)
    report = VaryingParameterExperiment(edited, checkpoint=store).run(
        config, sweep
    ).run_report
    assert report.checkpoint_counts() == {"hit": 0, "miss": 2, "corrupt": 0}
    assert len(store.keys()) == 4
