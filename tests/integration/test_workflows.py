"""Integration tests: full SECRETA workflows across module boundaries."""

import json

import pytest

from repro import Session, load_csv, relational_config, rt_config, transaction_config
from repro.algorithms import algorithm_names
from repro.engine import MethodEvaluator
from repro.metrics import is_k_anonymous, is_k_km_anonymous


@pytest.fixture(scope="module")
def session():
    secreta = Session.generate_rt(n_records=120, n_items=16, seed=61)
    secreta.configuration_editor.generate_hierarchies(fanout=3)
    secreta.queries_editor.generate(n_queries=15, seed=2)
    return secreta


class TestDemonstrationScenario:
    """The full demonstration plan of Section 3, end to end."""

    def test_scenario_one_evaluate_and_export(self, session, tmp_path):
        # Edit the dataset (Dataset Editor).
        session.dataset_editor.set_value(0, "Education", "Masters")
        # Evaluate a method for RT-datasets.
        config = rt_config(
            "cluster", "apriori", bounding="rtmerger", k=5, m=1, delta=0.6,
            label="scenario1",
        )
        report = session.evaluate(config)
        assert report.privacy["k_km_anonymous"] is True
        # Varying-delta visualization (Figure 3(a)).
        sweep = session.sweep(config, "delta", 0.0, 1.0, 0.5)
        assert len(sweep.series["are"]) == 3
        # Export everything and reload the anonymized dataset.
        exporter = session.exporter(tmp_path)
        written = exporter.export_evaluation(report, stem="scenario1")
        reloaded = load_csv(written["anonymized"], transaction_columns=["Items"])
        assert len(reloaded) == len(session.dataset)
        summary = json.loads(written["summary"].read_text())
        assert summary["configuration"]["label"] == "scenario1"

    def test_scenario_two_compare_and_export(self, session, tmp_path):
        report = session.compare(
            [
                rt_config("cluster", "apriori", bounding="rtmerger", m=1, delta=0.6, label="A"),
                rt_config("cluster", "lra", bounding="tmerger", m=1, delta=0.6, label="B"),
            ],
            "k",
            3,
            9,
            3,
        )
        assert report.values == [3, 6, 9]
        written = session.exporter(tmp_path).export_comparison(report, stem="scenario2")
        assert any(path.suffix == ".csv" for path in written.values())
        # Information loss should not decrease with k for either method.
        for sweep in report.sweeps:
            gcp = sweep.series["relational_gcp"].y
            assert gcp[-1] >= gcp[0] - 1e-9


class TestEveryAlgorithmThroughTheEngine:
    @pytest.mark.parametrize("name", algorithm_names("relational"))
    def test_relational_algorithms_protect_k(self, session, name):
        report = MethodEvaluator(
            session.dataset, session.resources(), verify_privacy=False
        ).evaluate(relational_config(name, k=5))
        assert is_k_anonymous(
            report.anonymized,
            5,
            [a.name for a in session.dataset.schema.relational if a.quasi_identifier],
        )

    @pytest.mark.parametrize("name", algorithm_names("transaction"))
    def test_transaction_algorithms_run_and_report(self, session, name):
        report = MethodEvaluator(
            session.dataset, session.resources(), verify_privacy=False
        ).evaluate(transaction_config(name, k=4, m=1))
        assert 0.0 <= report.utility["transaction_ul"] <= 1.0
        assert report.are >= 0.0

    @pytest.mark.parametrize("bounding", algorithm_names("rt"))
    def test_bounding_methods_protect_k_km(self, session, bounding):
        config = rt_config("cluster", "apriori", bounding=bounding, k=4, m=1, delta=0.7)
        report = MethodEvaluator(
            session.dataset, session.resources(), verify_privacy=False
        ).evaluate(config)
        resources = session.resources()
        assert is_k_km_anonymous(
            report.anonymized,
            4,
            1,
            hierarchy=resources.item_hierarchy,
            universe=session.dataset.item_universe("Items"),
        )


class TestCsvWorkflow:
    def test_csv_in_csv_out(self, tmp_path):
        source = Session.generate_rt(n_records=40, n_items=12, seed=77)
        csv_path = source.dataset_editor.save(tmp_path / "in.csv")
        session = Session.from_csv(csv_path, transaction_columns=["Items"])
        report = session.evaluate(transaction_config("apriori", k=3, m=1))
        out_path = session.exporter(tmp_path).export_dataset(
            report.anonymized, name="anonymized"
        )
        reloaded = load_csv(out_path, transaction_columns=["Items"])
        assert len(reloaded) == 40
