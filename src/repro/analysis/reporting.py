"""Text, JSON and SARIF reporters for analysis runs."""

from __future__ import annotations

import json
from typing import Any

from repro.analysis.core import AnalysisReport, Finding, all_rules


def _status(finding: Finding) -> str:
    if finding.suppressed:
        return "suppressed"
    if finding.baselined:
        return "baselined"
    return "new"


def render_text(report: AnalysisReport, verbose: bool = False) -> str:
    """Human-readable report: one line per finding plus a summary line.

    By default only *new* findings are listed; ``verbose`` also lists the
    suppressed and baselined ones (tagged), which is how you audit what the
    escape hatches are currently hiding.
    """
    lines: list[str] = []
    for finding in report.findings:
        if not verbose and not finding.is_new:
            continue
        tag = "" if finding.is_new else f" ({_status(finding)})"
        where = f" in {finding.symbol}" if finding.symbol else ""
        lines.append(
            f"{finding.location()}: {finding.code} {finding.message}{where}{tag}"
        )
    lines.append(
        f"{len(report.new_findings)} new finding(s), "
        f"{len(report.suppressed_findings)} suppressed, "
        f"{len(report.baselined_findings)} baselined "
        f"({report.analyzed_files} files analyzed)"
    )
    return "\n".join(lines)


def render_json(report: AnalysisReport) -> str:
    """Machine-readable report (stable key order, one object per finding)."""
    payload = {
        "summary": {
            "analyzed_files": report.analyzed_files,
            "new": len(report.new_findings),
            "suppressed": len(report.suppressed_findings),
            "baselined": len(report.baselined_findings),
            "exit_code": report.exit_code,
        },
        "findings": [
            {
                "code": finding.code,
                "message": finding.message,
                "path": finding.path,
                "line": finding.line,
                "column": finding.column,
                "symbol": finding.symbol,
                "status": _status(finding),
                "reason": finding.suppression_reason or finding.baseline_reason,
            }
            for finding in report.findings
        ],
    }
    return json.dumps(payload, indent=2)


#: Canonical SARIF 2.1.0 identifiers (fixed by the spec, not by us).
SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def _sarif_result(finding: Finding) -> dict[str, Any]:
    result: dict[str, Any] = {
        "ruleId": finding.code,
        "level": "error" if finding.is_new else "note",
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": finding.path},
                    "region": {
                        "startLine": max(finding.line, 1),
                        # SARIF columns are 1-based; ast col_offset is 0-based.
                        "startColumn": finding.column + 1,
                    },
                }
            }
        ],
    }
    if finding.symbol:
        result["logicalLocations"] = [
            {"fullyQualifiedName": finding.symbol, "kind": "function"}
        ]
    suppressions: list[dict[str, Any]] = []
    if finding.suppressed:
        suppressions.append(
            {
                "kind": "inSource",
                "justification": finding.suppression_reason,
            }
        )
    if finding.baselined:
        suppressions.append(
            {
                "kind": "external",
                "justification": finding.baseline_reason,
            }
        )
    if suppressions:
        result["suppressions"] = suppressions
    return result


def render_sarif(report: AnalysisReport) -> str:
    """SARIF 2.1.0 log for CI PR annotation (codeql-action/upload-sarif).

    New findings are ``error``-level results; suppressed and baselined
    findings ship as ``note``-level results carrying SARIF ``suppressions``
    (``inSource`` for ``# repro: allow`` comments, ``external`` for baseline
    entries) so the escape hatches stay auditable in the uploaded log.
    """
    driver = {
        "name": "repro-lint",
        "semanticVersion": "1.0.0",
        "rules": [
            {
                "id": rule.code,
                "name": rule.name,
                "shortDescription": {"text": rule.summary},
                "fullDescription": {"text": rule.explanation},
            }
            for rule in all_rules()
        ],
    }
    payload: dict[str, Any] = {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {"driver": driver},
                "results": [
                    _sarif_result(finding) for finding in report.findings
                ],
            }
        ],
    }
    return json.dumps(payload, indent=2)
