"""Setuptools entry point.

The build metadata lives here (rather than in a ``[build-system]`` /
``[project]`` table) so that ``pip install -e .`` works in fully offline
environments that ship setuptools but not the ``wheel`` package: pip then
falls back to the legacy ``setup.py develop`` code path, which has no
build-isolation or wheel requirements.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "SECRETA reproduction: a framework for evaluating and comparing "
        "relational and transaction anonymization algorithms"
    ),
    author="SECRETA reproduction authors",
    license="MIT",
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=["numpy"],
    extras_require={"test": ["pytest", "pytest-benchmark", "hypothesis"]},
)
