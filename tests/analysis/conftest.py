from __future__ import annotations

from pathlib import Path

import pytest

from lint_harness import LintHarness


@pytest.fixture
def harness(tmp_path: Path) -> LintHarness:
    return LintHarness(tmp_path)
