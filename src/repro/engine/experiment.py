"""Varying-parameter execution (the Experimentation Module).

SECRETA supports two execution styles: *single parameter execution*, where
all parameters are fixed, and *varying parameter execution*, where the user
"selects the start/end values and step of a parameter that varies, as well as
fixed values for other parameters" and the system plots utility indicators
and runtime against the varying parameter.  This module implements the sweep
machinery used by both the Evaluation and the Comparison mode.

Sweeps can fan out across CPU cores: pass ``mode="process"`` to
:class:`VaryingParameterExperiment` and every sweep point is evaluated in its
own worker process (the algorithms are CPU-bound pure Python, so threads
cannot speed them up — see :mod:`repro.engine.runner`).  In process mode the
dataset is not pickled into every task: it is exported once to shared memory
and the tasks carry only the small manifest
(:mod:`repro.columnar.shared`); pass a persistent
:class:`~repro.engine.pool.WorkerPool` to reuse workers and the export
across several sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro.columnar.shared import resolve_shared_dataset
from repro.datasets.dataset import Dataset
from repro.datasets.domains import DatasetDomains
from repro.engine.checkpoint import CheckpointStore, sweep_point_keys
from repro.engine.config import SWEEPABLE_PARAMETERS, AnonymizationConfig
from repro.engine.evaluator import MethodEvaluator
from repro.engine.pool import WorkerPool, fan_out_shared
from repro.engine.resilience import ExecutionPolicy, RunReport
from repro.engine.resources import ExperimentResources
from repro.engine.results import (
    ATTACK_INDICATORS,
    EvaluationReport,
    Series,
    SweepResult,
)
from repro.engine.runner import resolve_mode, run_many
from repro.exceptions import ConfigurationError

#: Indicators extracted from every evaluation report into sweep series.
SWEEP_INDICATORS = (
    "are",
    "runtime_seconds",
    "relational_gcp",
    "transaction_ul",
    "item_frequency_error",
    "discernibility",
    "average_class_size",
) + ATTACK_INDICATORS


@dataclass(frozen=True)
class ParameterSweep:
    """The varying parameter of an experiment: name plus the values to visit."""

    parameter: str
    values: tuple[Any, ...]

    def __post_init__(self) -> None:
        if self.parameter not in SWEEPABLE_PARAMETERS:
            raise ConfigurationError(
                f"cannot vary {self.parameter!r}; expected one of {SWEEPABLE_PARAMETERS}"
            )
        if not self.values:
            raise ConfigurationError("a parameter sweep needs at least one value")
        object.__setattr__(self, "values", tuple(self.values))

    @classmethod
    def from_range(
        cls, parameter: str, start: float, end: float, step: float
    ) -> "ParameterSweep":
        """Build a sweep from start/end/step, exactly like the GUI sliders."""
        if step <= 0:
            raise ConfigurationError("the sweep step must be positive")
        if end < start:
            raise ConfigurationError("the sweep end must not precede its start")
        values: list[float] = []
        value = float(start)
        while value <= end + 1e-9:
            values.append(round(value, 10))
            value += step
        if parameter in ("k", "m"):
            values = [int(round(v)) for v in values]
        return cls(parameter, tuple(values))

    def __len__(self) -> int:
        return len(self.values)


def indicator_series(
    reports: Sequence[EvaluationReport],
    values: Sequence[Any],
    parameter: str,
    label: str,
) -> dict[str, Series]:
    """Build one series per indicator from a list of evaluation reports."""
    series: dict[str, Series] = {}
    for indicator in SWEEP_INDICATORS:
        current = Series(
            name=f"{label}:{indicator}", x_label=parameter, y_label=indicator
        )
        populated = False
        for value, report in zip(values, reports):
            if indicator == "are":
                if report.are is not None:
                    current.append(value, report.are)
                    populated = True
            elif indicator == "runtime_seconds":
                current.append(value, report.runtime_seconds)
                populated = True
            elif indicator in report.utility:
                current.append(value, report.utility[indicator])
                populated = True
            elif indicator in ATTACK_INDICATORS:
                attack_value = report.attack_indicator(indicator)
                if attack_value is not None:
                    current.append(value, attack_value)
                    populated = True
        if populated:
            series[indicator] = current
    return series


def _evaluate_sweep_point(task: tuple) -> EvaluationReport:
    """Evaluate one (configuration, parameter, value) sweep point.

    Module-level so process-mode execution can pickle it; the resources
    travel inside the task tuple, while the dataset slot holds either the
    dataset itself (sequential/thread) or a shared-memory manifest that the
    worker attaches — once per process — without copying array payloads.
    """
    (
        dataset,
        resources,
        verify_privacy,
        universe_mode,
        simulate_attacks,
        config,
        parameter,
        value,
    ) = task
    dataset = resolve_shared_dataset(dataset)
    evaluator = MethodEvaluator(
        dataset,
        resources,
        verify_privacy=verify_privacy,
        universe_mode=universe_mode,
        simulate_attacks=simulate_attacks,
    )
    return evaluator.evaluate(config.with_parameter(parameter, value))


class VaryingParameterExperiment:
    """Run one configuration across a parameter sweep and collect series.

    ``mode`` selects how sweep points execute: ``"sequential"`` (default),
    ``"thread"``, or ``"process"`` to fan the CPU-bound anonymization runs out
    across cores.  ``max_workers`` caps the pool size.  In process mode the
    dataset ships to workers as a shared-memory manifest; pass ``pool`` (a
    :class:`~repro.engine.pool.WorkerPool`) to keep the workers and the
    export alive across several ``run`` calls instead of rebuilding them per
    sweep.

    ``policy`` (an :class:`~repro.engine.resilience.ExecutionPolicy`)
    controls fault tolerance: retries, per-point timeouts, crash recovery
    and the degradation ladder.  Process fan-out is resilient even without
    one; the resulting :class:`~repro.engine.resilience.RunReport` is
    attached to the :class:`SweepResult` as ``run_report``.
    """

    def __init__(
        self,
        dataset: Dataset,
        resources: ExperimentResources | None = None,
        verify_privacy: bool = False,
        mode: str = "sequential",
        max_workers: int | None = None,
        pool: WorkerPool | None = None,
        universe_mode: str = "original",
        policy: ExecutionPolicy | None = None,
        checkpoint: CheckpointStore | None = None,
        simulate_attacks: bool = False,
    ) -> None:
        self.dataset = dataset
        self.resources = resources or ExperimentResources()
        self.verify_privacy = verify_privacy
        self.mode = mode
        self.max_workers = max_workers
        self.pool = pool
        self.universe_mode = universe_mode
        self.policy = policy
        self.checkpoint = checkpoint
        self.simulate_attacks = simulate_attacks

    def _tasks(
        self, payload: object, config: AnonymizationConfig, sweep: ParameterSweep
    ) -> list[tuple]:
        return [
            (
                payload,
                self.resources,
                self.verify_privacy,
                self.universe_mode,
                self.simulate_attacks,
                config,
                sweep.parameter,
                value,
            )
            for value in sweep.values
        ]

    def run(self, config: AnonymizationConfig, sweep: ParameterSweep) -> SweepResult:
        if self.resources.domains is None and len(self.dataset):
            # Capture the original-domain snapshot once in the parent so every
            # sweep point (and worker process) shares one equal snapshot.
            self.resources.domains = DatasetDomains.capture(self.dataset)
        resolved = resolve_mode(mode=self.mode)
        # Checkpoint keys are derived here, in the orchestrating process and
        # *after* the domain snapshot above, from the real dataset — so a
        # resumed run (which captures the identical snapshot) computes the
        # identical keys regardless of execution mode.
        keys = (
            sweep_point_keys(
                self.dataset,
                self.resources,
                self.verify_privacy,
                self.universe_mode,
                config,
                sweep,
                self.simulate_attacks,
            )
            if self.checkpoint is not None
            else None
        )
        if resolved == "process" and len(sweep) > 1:
            report = RunReport()
            reports = fan_out_shared(
                self.dataset,
                lambda payload: self._tasks(payload, config, sweep),
                _evaluate_sweep_point,
                pool=self.pool,
                max_workers=self.max_workers,
                policy=self.policy,
                report=report,
                checkpoint=self.checkpoint,
                checkpoint_keys=keys,
            )
        else:
            report = (
                RunReport()
                if self.policy is not None or self.checkpoint is not None
                else None
            )
            reports = run_many(
                self._tasks(self.dataset, config, sweep),
                _evaluate_sweep_point,
                mode=resolved,
                max_workers=self.max_workers,
                policy=self.policy,
                report=report,
                checkpoint=self.checkpoint,
                checkpoint_keys=keys,
            )
        series = indicator_series(
            reports, list(sweep.values), sweep.parameter, config.display_label
        )
        return SweepResult(
            configuration=config.describe(),
            parameter=sweep.parameter,
            values=list(sweep.values),
            series=series,
            reports=reports,
            run_report=report,
        )
