"""Reading and writing privacy and utility policies.

The Configuration Editor can load policies from files and the Data Export
Module can write them back.  The file format is line-oriented:

Privacy policy files start with a ``k=<value>`` line; every following line is
one constraint, its items separated by spaces::

    k=5
    i001
    i002 i017

Utility policy files contain one constraint (item group) per line::

    i001 i002 i003
    i004 i005
"""

from __future__ import annotations

from pathlib import Path

from repro.exceptions import PolicyError
from repro.policies.privacy import PrivacyConstraint, PrivacyPolicy
from repro.policies.utility import UtilityConstraint, UtilityPolicy


def write_privacy_policy_text(policy: PrivacyPolicy) -> str:
    lines = [f"k={policy.k}"]
    for constraint in policy:
        lines.append(" ".join(sorted(constraint.items)))
    return "\n".join(lines) + "\n"


def read_privacy_policy_text(text: str) -> PrivacyPolicy:
    lines = [line.strip() for line in text.splitlines() if line.strip()]
    if not lines:
        raise PolicyError("privacy policy file is empty")
    header = lines[0].replace(" ", "")
    if not header.lower().startswith("k="):
        raise PolicyError("privacy policy file must start with a 'k=<value>' line")
    try:
        k = int(header[2:])
    except ValueError:
        raise PolicyError(f"invalid protection level in header {lines[0]!r}") from None
    constraints = [PrivacyConstraint(line.split()) for line in lines[1:]]
    if not constraints:
        raise PolicyError("privacy policy file defines no constraints")
    return PrivacyPolicy(constraints, k=k)


def save_privacy_policy(policy: PrivacyPolicy, path: str | Path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(write_privacy_policy_text(policy), encoding="utf-8")
    return path


def load_privacy_policy(path: str | Path) -> PrivacyPolicy:
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as error:
        raise PolicyError(f"cannot read privacy policy file {path}: {error}") from error
    return read_privacy_policy_text(text)


def write_utility_policy_text(policy: UtilityPolicy) -> str:
    lines = [" ".join(sorted(constraint.items)) for constraint in policy]
    return "\n".join(lines) + "\n"


def read_utility_policy_text(text: str) -> UtilityPolicy:
    lines = [line.strip() for line in text.splitlines() if line.strip()]
    if not lines:
        raise PolicyError("utility policy file is empty")
    return UtilityPolicy([UtilityConstraint(line.split()) for line in lines])


def save_utility_policy(policy: UtilityPolicy, path: str | Path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(write_utility_policy_text(policy), encoding="utf-8")
    return path


def load_utility_policy(path: str | Path) -> UtilityPolicy:
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as error:
        raise PolicyError(f"cannot read utility policy file {path}: {error}") from error
    return read_utility_policy_text(text)
