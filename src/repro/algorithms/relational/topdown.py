"""Top-Down Specialization (Fung, Wang, Yu, ICDE 2005).

The algorithm starts from the fully generalized table (every quasi-identifier
at the root of its hierarchy, which is trivially k-anonymous) and repeatedly
performs the most beneficial *specialization*: replacing one generalized value
in the current multi-dimensional cut by its children, provided the table stays
k-anonymous.  The process stops when no specialization is valid any more, so
the output is a maximally specific k-anonymous generalization.

The original paper scores specializations by information gain towards a
classification task divided by the anonymity loss.  SECRETA uses the
algorithm as a generic anonymizer, so this implementation scores a
specialization by the information-loss (NCP) reduction it buys, with the
k-anonymity requirement enforced as a hard constraint — the same greedy
structure with a task-neutral utility function (documented substitution).
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.algorithms.base import (
    AnonymizationResult,
    Anonymizer,
    PhaseTimer,
    relational_quasi_identifiers,
    require_hierarchies,
    validate_k,
)
from repro.datasets.dataset import Dataset
from repro.exceptions import AlgorithmError
from repro.hierarchy.hierarchy import Hierarchy
from repro.metrics.relational import global_certainty_penalty


class _AttributeState:
    """Per-attribute bookkeeping: value paths, the current cut and NCP costs."""

    def __init__(self, attribute: str, hierarchy: Hierarchy, values: list):
        self.attribute = attribute
        self.hierarchy = hierarchy
        self.distinct = sorted({str(value) for value in values})
        self.counts = {
            value: sum(1 for v in values if str(v) == value) for value in self.distinct
        }
        # Leaf-to-root path (inclusive) per distinct value.
        self.paths = {
            value: [value] + hierarchy.ancestors(value) for value in self.distinct
        }
        self.cut: set[str] = {hierarchy.root.label}
        self.domain_size = max(len(self.distinct), 1)
        root_interval = hierarchy.node(hierarchy.root.label).interval
        self.domain_span = (
            (root_interval[1] - root_interval[0]) if root_interval else None
        )

    def current_label(self, value: str) -> str:
        for label in self.paths[value]:
            if label in self.cut:
                return label
        # The root is always in the cut, so this cannot be reached.
        raise AlgorithmError(f"value {value!r} is not covered by the current cut")

    def ncp(self, label: str) -> float:
        """NCP cost of publishing ``label`` for this attribute."""
        node = self.hierarchy.node(label)
        if self.domain_span is not None and node.interval is not None:
            if self.domain_span == 0:
                return 0.0
            return (node.interval[1] - node.interval[0]) / self.domain_span
        if self.domain_size <= 1:
            return 0.0
        return (self.hierarchy.leaf_count(label) - 1) / max(self.domain_size - 1, 1)

    def specialization_gain(self, label: str) -> float:
        """Total NCP reduction obtained by replacing ``label`` with its children."""
        gain = 0.0
        new_cut = (self.cut - {label}) | set(self.hierarchy.children(label))
        for value in self.distinct:
            if self.current_label(value) != label:
                continue
            for candidate in self.paths[value]:
                if candidate in new_cut:
                    gain += self.counts[value] * (self.ncp(label) - self.ncp(candidate))
                    break
        return gain

    def specialize(self, label: str) -> None:
        self.cut.remove(label)
        self.cut.update(self.hierarchy.children(label))

    def undo(self, label: str) -> None:
        self.cut.difference_update(self.hierarchy.children(label))
        self.cut.add(label)


class TopDownSpecialization(Anonymizer):
    """k-anonymity by iterative specialization from the fully generalized table."""

    name = "top-down"
    data_kind = "relational"

    def __init__(
        self,
        k: int,
        hierarchies: Mapping[str, Hierarchy],
        attributes: Sequence[str] | None = None,
    ):
        self.k = int(k)
        self.hierarchies = dict(hierarchies)
        self.attributes = list(attributes) if attributes is not None else None

    def parameters(self) -> dict:
        return {"k": self.k, "attributes": self.attributes}

    # -- helpers -------------------------------------------------------------------
    def _min_class_size(
        self, dataset: Dataset, states: dict[str, _AttributeState]
    ) -> int:
        groups: dict[tuple, int] = {}
        attributes = list(states)
        value_maps = {
            attribute: {
                value: states[attribute].current_label(value)
                for value in states[attribute].distinct
            }
            for attribute in attributes
        }
        for record in dataset:
            key = tuple(
                value_maps[attribute][str(record[attribute])] for attribute in attributes
            )
            groups[key] = groups.get(key, 0) + 1
        return min(groups.values()) if groups else 0

    # -- main ----------------------------------------------------------------------
    def anonymize(self, dataset: Dataset) -> AnonymizationResult:
        attributes = self.attributes or relational_quasi_identifiers(dataset)
        if not attributes:
            raise AlgorithmError(
                "TopDownSpecialization: the dataset has no relational quasi-identifiers"
            )
        require_hierarchies(attributes, self.hierarchies, "TopDownSpecialization")
        validate_k(self.k, len(dataset), "TopDownSpecialization")

        timer = PhaseTimer()
        with timer.phase("initialisation"):
            states = {
                attribute: _AttributeState(
                    attribute, self.hierarchies[attribute], dataset.column(attribute)
                )
                for attribute in attributes
            }

        specializations = 0
        with timer.phase("specialization"):
            while True:
                candidates: list[tuple[float, str, str]] = []
                for attribute, state in states.items():
                    for label in list(state.cut):
                        if not state.hierarchy.children(label):
                            continue
                        gain = state.specialization_gain(label)
                        candidates.append((gain, attribute, label))
                if not candidates:
                    break
                candidates.sort(key=lambda entry: (-entry[0], entry[1], entry[2]))
                applied = False
                for gain, attribute, label in candidates:
                    if gain <= 0 and specializations > 0:
                        # Only non-positive gains remain; further splitting
                        # cannot improve utility.
                        break
                    state = states[attribute]
                    state.specialize(label)
                    if self._min_class_size(dataset, states) >= self.k:
                        specializations += 1
                        applied = True
                        break
                    state.undo(label)
                if not applied:
                    break

        with timer.phase("apply"):
            anonymized = dataset.copy(name=f"{dataset.name}[top-down]")
            for attribute, state in states.items():
                mapping = {
                    value: state.current_label(value) for value in state.distinct
                }
                anonymized.map_column(
                    attribute, lambda value, m=mapping: m.get(str(value), value)
                )

        gcp = global_certainty_penalty(
            dataset, anonymized, attributes=attributes, hierarchies=self.hierarchies
        )
        cut_sizes = {attribute: len(state.cut) for attribute, state in states.items()}
        return AnonymizationResult(
            dataset=anonymized,
            algorithm=self.name,
            parameters=self.parameters(),
            runtime_seconds=timer.total,
            phase_seconds=timer.phases,
            statistics={
                "specializations": specializations,
                "cut_sizes": cut_sizes,
                "gcp": gcp,
                "min_class_size": self._min_class_size(dataset, states),
            },
        )
