"""Property-based equivalence tests for the relational columnar kernels.

The PR 3 kernels only *re-shape* pure computations: GCP/NCP gathers a
per-label lookup table instead of walking cells, the greedy clustering and
the RT merge loop score candidates through array summaries instead of
per-record dictionary walks.  Every kernel must therefore match its scalar
reference element-for-element:

* ``RelationalLossContext.dataset_ncp_values`` vs the ``record_ncp`` loop,
* ``equivalence_class_sizes`` vs ``Dataset.group_by``,
* ``_ClusterKernel.costs`` vs ``_ClusterBounds.cost_with``,
* ``_MergeState`` scores vs ``RtBoundingAnonymizer._merge_score``,
* the full Rmerger / Tmerger / RTmerger outputs with and without the
  vectorized paths.

The generated datasets deliberately include missing cells (``None``),
all-``None`` columns, single-value domains, generalized interval/group/root
labels and hierarchy-scored categorical attributes.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import ClusterAnonymizer, Rmerger, RTmerger, Tmerger
from repro.algorithms.relational.cluster import _ClusterBounds, _ClusterKernel
from repro.algorithms.rt.bounding import _MergeState
from repro.datasets import Attribute, Dataset, Schema, generate_rt_dataset
from repro.exceptions import DatasetError
from repro.hierarchy import build_categorical_hierarchy, build_item_hierarchy
from repro.hierarchy.builders import format_interval
from repro.metrics import (
    RelationalLossContext,
    average_class_size,
    discernibility_metric,
    equivalence_class_sizes,
    global_certainty_penalty,
    ncp_per_attribute,
)

EDUCATION = ["A", "B", "C", "D", "E"]
ITEMS = [f"i{n}" for n in range(6)]

#: One record: (Age, Education, generalization choices, basket).
records = st.lists(
    st.tuples(
        st.one_of(st.none(), st.integers(0, 50)),
        st.one_of(st.none(), st.sampled_from(EDUCATION)),
        st.tuples(st.integers(0, 3), st.integers(0, 3)),
        st.sets(st.sampled_from(ITEMS), max_size=3),
    ),
    min_size=4,
    max_size=24,
)


def make_rt(rows) -> Dataset:
    schema = Schema(
        [
            Attribute.numeric("Age"),
            Attribute.categorical("Education"),
            Attribute.transaction("Items"),
        ]
    )
    return Dataset(
        schema,
        [
            {"Age": age, "Education": education, "Items": sorted(basket)}
            for age, education, _, basket in rows
        ],
    )


def generalize(dataset: Dataset, rows, hierarchies=None) -> Dataset:
    """Apply each record's generalization choice: keep / label / root / suppress."""
    anonymized = dataset.copy()
    for index, (age, education, (age_choice, education_choice), _) in enumerate(rows):
        if age_choice == 1 and age is not None:
            anonymized.set_value(index, "Age", format_interval(age, age + 5))
        elif age_choice == 2:
            anonymized.set_value(index, "Age", "*")
        elif age_choice == 3:
            anonymized.set_value(index, "Age", "†")
        if education_choice == 1 and education is not None:
            if hierarchies and "Education" in hierarchies:
                anonymized.set_value(
                    index,
                    "Education",
                    hierarchies["Education"].generalize(education, steps=1),
                )
            else:
                anonymized.set_value(index, "Education", "(A,B,C)")
        elif education_choice == 2:
            anonymized.set_value(index, "Education", "*")
        elif education_choice == 3:
            anonymized.set_value(index, "Education", "†")
    return anonymized


def context_for(dataset: Dataset, hierarchies=None) -> RelationalLossContext | None:
    """A loss context over Age/Education, or ``None`` when a domain is empty."""
    try:
        return RelationalLossContext(
            dataset, ["Age", "Education"], hierarchies=hierarchies
        )
    except DatasetError:
        return None  # an all-None column has no domain to score against


class TestGcpKernels:
    @given(rows=records)
    @settings(max_examples=80, deadline=None)
    def test_dataset_ncp_matches_record_loop(self, rows):
        original = make_rt(rows)
        anonymized = generalize(original, rows)
        context = context_for(original)
        if context is None:
            return
        vectorized = context.dataset_ncp_values(anonymized)
        scalar = [context.record_ncp(record) for record in anonymized]
        assert vectorized.tolist() == pytest.approx(scalar)
        assert global_certainty_penalty(
            original, anonymized, ["Age", "Education"]
        ) == pytest.approx(sum(scalar) / len(scalar))

    @given(rows=records)
    @settings(max_examples=40, deadline=None)
    def test_dataset_ncp_matches_with_hierarchy(self, rows):
        original = make_rt(rows)
        educations = [r[1] for r in rows if r[1] is not None]
        if not educations:
            return
        hierarchies = {
            "Education": build_categorical_hierarchy(educations, fanout=2)
        }
        anonymized = generalize(original, rows, hierarchies)
        context = context_for(original, hierarchies)
        if context is None:
            return
        vectorized = context.dataset_ncp_values(anonymized)
        scalar = [context.record_ncp(record) for record in anonymized]
        assert vectorized.tolist() == pytest.approx(scalar)

    @given(rows=records)
    @settings(max_examples=40, deadline=None)
    def test_ncp_per_attribute_matches_cell_loop(self, rows):
        original = make_rt(rows)
        anonymized = generalize(original, rows)
        if context_for(original) is None:
            return
        fast = ncp_per_attribute(original, anonymized, ["Age", "Education"])
        reference = RelationalLossContext(original, ["Age", "Education"])
        for attribute, value in fast.items():
            scalar = sum(
                reference.cell_ncp(attribute, record[attribute])
                for record in anonymized
            ) / len(anonymized)
            assert value == pytest.approx(scalar)

    def test_all_none_column_still_raises(self):
        dataset = make_rt([(None, "A", (0, 0), set()), (None, "B", (0, 0), set())])
        with pytest.raises(DatasetError):
            RelationalLossContext(dataset, ["Age"])

    def test_single_value_domain_scores_zero(self):
        rows = [(30, "A", (0, 0), set()), (30, "A", (0, 0), set())]
        dataset = make_rt(rows)
        context = RelationalLossContext(dataset, ["Age", "Education"])
        assert context.dataset_ncp_values(dataset).tolist() == [0.0, 0.0]


class TestGroupingKernels:
    @given(rows=records)
    @settings(max_examples=60, deadline=None)
    def test_class_sizes_match_group_by(self, rows):
        dataset = make_rt(rows)
        anonymized = generalize(dataset, rows)
        for attributes in (["Age"], ["Age", "Education"], []):
            sizes = sorted(equivalence_class_sizes(anonymized, attributes).tolist())
            groups = anonymized.group_by(attributes)
            assert sizes == sorted(len(indices) for indices in groups.values())
        assert discernibility_metric(anonymized, ["Age", "Education"]) == sum(
            len(g) ** 2 for g in anonymized.group_by(["Age", "Education"]).values()
        )
        groups = anonymized.group_by(["Age", "Education"])
        assert average_class_size(anonymized, 2, ["Age", "Education"]) == (
            pytest.approx((len(anonymized) / len(groups)) / 2)
        )

    def test_grouping_still_accepts_transaction_attributes(self):
        dataset = make_rt(
            [(1, "A", (0, 0), {"i0"}), (2, "B", (0, 0), {"i0"}), (3, "A", (0, 0), set())]
        )
        item_groups = dataset.group_by(["Items"])
        assert sorted(equivalence_class_sizes(dataset, ["Items"]).tolist()) == sorted(
            len(g) for g in item_groups.values()
        )
        assert discernibility_metric(dataset, ["Items"]) == sum(
            len(g) ** 2 for g in item_groups.values()
        )


class TestClusterKernels:
    @given(rows=records)
    @settings(max_examples=60, deadline=None)
    def test_kernel_costs_match_scalar_bounds(self, rows):
        dataset = make_rt(rows)
        algorithm = ClusterAnonymizer(2, attributes=["Age", "Education"])
        algorithm._prepare(dataset, ["Age", "Education"])
        kernel = _ClusterKernel(algorithm, dataset, ["Age", "Education"])
        bounds = _ClusterBounds(algorithm, dataset, ["Age", "Education"], 0)
        kernel.reset(0)
        members = list(range(1, len(dataset), 3))
        for member in members:
            bounds.add(member)
            kernel.add(member)
        candidates = np.arange(len(dataset), dtype=np.int64)
        vectorized = kernel.costs(candidates)
        scalar = [bounds.cost_with(int(index)) for index in candidates]
        assert vectorized.tolist() == pytest.approx(scalar, abs=1e-12)

    @given(rows=records, k=st.integers(2, 4), limit=st.sampled_from([None, 3]))
    @settings(max_examples=40, deadline=None)
    def test_build_clusters_equivalent(self, rows, k, limit):
        dataset = make_rt(rows)
        if len(dataset) < k:
            return
        fast = ClusterAnonymizer(k, attributes=["Age", "Education"], candidate_limit=limit)
        slow = ClusterAnonymizer(k, attributes=["Age", "Education"], candidate_limit=limit)
        slow.vectorized = False
        assert fast.build_clusters(dataset) == slow.build_clusters(dataset)

    def test_kernel_matches_scalar_on_dict_equal_mixed_cells(self):
        # 25 and 25.0 are one dictionary key but two str() identities; the
        # generalized label forces the column onto the categorical score path,
        # where the scalar model distinguishes them.  The kernel must too.
        schema = Schema([Attribute.numeric("Age")])
        dataset = Dataset(
            schema, [{"Age": value} for value in (25, 25.0, "[20-40]", 25, None)]
        )
        algorithm = ClusterAnonymizer(2, attributes=["Age"])
        algorithm._prepare(dataset, ["Age"])
        kernel = _ClusterKernel(algorithm, dataset, ["Age"])
        bounds = _ClusterBounds(algorithm, dataset, ["Age"], 0)
        kernel.reset(0)
        candidates = np.arange(len(dataset), dtype=np.int64)
        scalar = [bounds.cost_with(int(index)) for index in candidates]
        assert kernel.costs(candidates).tolist() == pytest.approx(scalar)

    def test_none_numeric_seed_does_not_anchor_bounds_at_zero(self):
        # Regression: a cluster seeded on a missing Age used to get bounds
        # (0.0, 0.0), so a candidate with Age=40 looked 40 units wide.
        rows = [
            (None, "A", (0, 0), set()),
            (40, "A", (0, 0), set()),
            (0, "A", (0, 0), set()),
            (41, "A", (0, 0), set()),
        ]
        dataset = make_rt(rows)
        algorithm = ClusterAnonymizer(2, attributes=["Age"])
        algorithm._prepare(dataset, ["Age"])
        bounds = _ClusterBounds(algorithm, dataset, ["Age"], 0)
        # Any first numeric value forms a zero-width range, whatever its size.
        assert bounds.cost_with(1) == 0.0
        assert bounds.cost_with(2) == 0.0
        bounds.add(1)
        assert bounds.cost_with(3) == pytest.approx(1.0 / 41.0)


#: Cluster sizes used to partition the generated records into merge clusters.
partitions = st.lists(st.integers(1, 4), min_size=2, max_size=6)


def partition(dataset: Dataset, sizes) -> list[list[int]] | None:
    clusters: list[list[int]] = []
    start = 0
    for size in sizes:
        if start >= len(dataset):
            break
        clusters.append(list(range(start, min(start + size, len(dataset)))))
        start += size
    if start < len(dataset):
        clusters.append(list(range(start, len(dataset))))
    return clusters if len(clusters) >= 2 else None


class TestMergeKernels:
    @given(rows=records, sizes=partitions, use_hierarchy=st.booleans())
    @settings(max_examples=50, deadline=None)
    def test_merge_scores_match_scalar(self, rows, sizes, use_hierarchy):
        dataset = make_rt(rows)
        clusters = partition(dataset, sizes)
        if clusters is None:
            return
        hierarchies = {}
        if use_hierarchy:
            educations = [r[1] for r in rows if r[1] is not None]
            if educations:
                hierarchies["Education"] = build_categorical_hierarchy(
                    educations, fanout=2
                )
        attributes = ["Age", "Education"]
        helper = ClusterAnonymizer(2, hierarchies, attributes=attributes)
        helper._prepare(dataset, attributes)
        for merger in (Rmerger, Tmerger, RTmerger):
            algorithm = merger(k=2, hierarchies=hierarchies)
            state = _MergeState(
                algorithm.merge_strategy, helper, dataset, attributes, "Items", clusters
            )
            worst = len(clusters) - 1
            partner = state.best_partner(worst)
            scalar = [
                algorithm._merge_score(
                    helper, dataset, attributes, "Items",
                    clusters[worst], clusters[position],
                )
                for position in range(len(clusters))
                if position != worst
            ]
            expected = min(range(len(scalar)), key=scalar.__getitem__)
            # The state skips the worst position itself, so re-align indices.
            candidates = [p for p in range(len(clusters)) if p != worst]
            assert partner == candidates[expected]
            # Exercise the incremental update: merge and re-score.
            merged = sorted(clusters[worst] + clusters[partner])
            keep = [p for p in range(len(clusters)) if p not in (worst, partner)]
            new_clusters = [clusters[p] for p in keep] + [merged]
            state.merge(worst, partner)
            fresh = _MergeState(
                algorithm.merge_strategy, helper, dataset, attributes, "Items",
                new_clusters,
            )
            if len(new_clusters) >= 2:
                incremental = state.best_partner(0)
                rebuilt = fresh.best_partner(0)
                assert incremental == rebuilt

    @pytest.mark.parametrize("merger", [Rmerger, Tmerger, RTmerger])
    def test_bounding_output_equivalence_end_to_end(self, merger):
        rt = generate_rt_dataset(n_records=90, n_items=15, seed=23)
        item_hierarchy = build_item_hierarchy(rt.item_universe("Items"), fanout=3)
        fast = merger(k=3, m=2, delta=0.3, item_hierarchy=item_hierarchy)
        slow = merger(k=3, m=2, delta=0.3, item_hierarchy=item_hierarchy)
        slow.vectorized_merge = False
        slow_cluster = ClusterAnonymizer(3)
        slow_cluster.vectorized = False
        slow.relational_algorithm = slow_cluster
        fast_result = fast.anonymize(rt)
        slow_result = slow.anonymize(rt)
        assert fast_result.dataset.to_rows() == slow_result.dataset.to_rows()
        assert (
            fast_result.statistics["cluster_assignment"]
            == slow_result.statistics["cluster_assignment"]
        )
        assert fast_result.statistics["merges"] == slow_result.statistics["merges"]
