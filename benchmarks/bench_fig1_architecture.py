"""FIG1 — Architecture smoke-run (Figure 1).

Figure 1 shows the component wiring: the frontend editors feed the Policy
Specification Module and the Method Evaluator/Comparator, which spawn
Anonymization Module instances and forward results to the Experimentation,
Plotting and Data Export modules.  This benchmark drives that entire pipeline
once (two configurations, sequential and parallel) and times it end to end.
"""

from __future__ import annotations

from repro.engine import (
    MethodComparator,
    ParameterSweep,
    rt_config,
    transaction_config,
)
from repro.frontend.export import DataExportModule
from repro.frontend.plotting import comparison_figure

CONFIGURATIONS = [
    rt_config("cluster", "apriori", bounding="rtmerger", m=2, delta=0.6, label="cluster+apriori"),
    transaction_config("lra", m=2, label="lra-only"),
]


def _run_pipeline(session, parallel: bool):
    comparator = MethodComparator(
        session.dataset, session.resources(), verify_privacy=False, parallel=parallel
    )
    return comparator.compare(CONFIGURATIONS, ParameterSweep("k", (5,)))


def test_end_to_end_pipeline_sequential(benchmark, session, record, tmp_path_factory):
    """Editors -> resources -> anonymization modules -> evaluation -> export."""
    report = benchmark.pedantic(_run_pipeline, args=(session, False), rounds=1, iterations=1)
    directory = tmp_path_factory.mktemp("fig1")
    exporter = DataExportModule(directory)
    written = exporter.export_comparison(report, stem="architecture")
    figure = comparison_figure(report, "are")
    record(
        "fig1_architecture",
        {
            "configurations": [sweep.configuration["label"] for sweep in report.sweeps],
            "are": {s.configuration["label"]: s.series["are"].y for s in report.sweeps},
            "exported_files": sorted(str(path.name) for path in written.values()),
            "figure_rows": figure.to_rows(),
        },
    )
    assert len(report.sweeps) == 2


def test_end_to_end_pipeline_parallel(benchmark, session):
    """The same pipeline with N parallel Anonymization Module instances."""
    report = benchmark.pedantic(_run_pipeline, args=(session, True), rounds=1, iterations=1)
    assert len(report.sweeps) == 2
