"""Memoized interpretation of generalized labels.

Resolving a generalized label to its leaf set
(:func:`repro.metrics.interpretation.label_leaves`) is pure but not free: an
explicit item group parses its label, a hierarchy node walks its subtree.
The metric and query hot paths used to re-derive the mapping per record per
label — an O(records × labels) rebuild.  :class:`LabelInterpreter` memoizes
the resolution for one (hierarchy, universe) pair together with everything
the metrics derive from it:

* ``leaves`` / ``restricted_leaves`` / ``size`` — leaf sets and their sizes,
* ``cost`` — the utility-loss charge of publishing a label,
* ``span`` — numeric bounds of interval labels,
* ``covered_items`` / ``best_costs`` / ``frequency_weights`` — per-itemset
  aggregates, memoized on the (typically few) distinct anonymized itemsets.

:func:`interpreter_for` hands out shared instances so repeated metric calls
over the same resources reuse one cache; hierarchies are held weakly so the
cache never outlives them.
"""

from __future__ import annotations

import weakref
from typing import Iterable, Mapping

from repro.hierarchy.hierarchy import Hierarchy
from repro.metrics.interpretation import label_leaves, label_span

#: Default bound for the index subsystem's memo dictionaries.
DEFAULT_CACHE_CAP = 65536


def evict_when_full(cache: dict, cap: int = DEFAULT_CACHE_CAP) -> None:
    """Clear ``cache`` before an insert would push it past ``cap`` entries.

    The single bounded-memo safety valve shared by every cache in the index
    subsystem and its consumers: long-lived memos must stay bounded under
    adversarial inputs where every label/itemset/cell is distinct.
    """
    if len(cache) >= cap:
        cache.clear()

#: Each (hierarchy, universe-key) cache bucket is cleared when it grows past
#: this many distinct universes (one interpreter per universe).
_MAX_FREE_INTERPRETERS = 128

_NO_SPAN = object()  # sentinel: "span computed, label is not numeric"


def generalization_cost(size: int, domain_size: int) -> float:
    """Utility-loss charge of a label standing for ``size`` of ``domain_size`` values.

    An original value costs 0, a label standing for ``n`` values costs
    ``(n - 1) / (domain - 1)``, the root costs 1.  This is the single
    implementation of the charging rule; :meth:`LabelInterpreter.cost` and
    :func:`repro.metrics.transaction.item_generalization_cost` both apply it.
    """
    if domain_size <= 1:
        return 0.0
    return max(0, size - 1) / (domain_size - 1)


class LabelInterpreter:
    """Memoized label → leaves/cost/span resolution for one (hierarchy, universe).

    ``universe`` is the item universe of the *original* dataset (or ``None``
    for relational attributes, where the metrics interpret labels against the
    hierarchy alone).  All lookups are cached for the lifetime of the
    interpreter, so a single instance should only ever be used with one
    hierarchy/universe pair — use :func:`interpreter_for` to get the shared
    instance for a pair.
    """

    def __init__(
        self,
        hierarchy: Hierarchy | None = None,
        universe: Iterable[str] | None = None,
    ) -> None:
        self.hierarchy = hierarchy
        self.universe: frozenset[str] | None = (
            None if universe is None else frozenset(str(item) for item in universe)
        )
        self._leaves: dict[str, frozenset[str]] = {}
        self._restricted: dict[str, frozenset[str]] = {}
        self._spans: dict[str, object] = {}
        self._covered: dict[frozenset, frozenset[str]] = {}
        self._best_costs: dict[frozenset, dict[str, float]] = {}
        self._weights: dict[frozenset, dict[str, float]] = {}

    def __repr__(self) -> str:
        universe = "None" if self.universe is None else len(self.universe)
        return (
            f"LabelInterpreter(hierarchy={self.hierarchy!r}, "
            f"universe_size={universe}, cached_labels={len(self._leaves)})"
        )

    # -- per-label lookups -----------------------------------------------------
    def leaves(self, label: object) -> frozenset[str]:
        """The original values ``label`` may stand for (memoized)."""
        key = str(label)
        try:
            return self._leaves[key]
        except KeyError:
            resolved = label_leaves(key, self.hierarchy, universe=self.universe)
            self._guard(self._leaves)
            self._leaves[key] = resolved
            return resolved

    def restricted_leaves(self, label: object) -> frozenset[str]:
        """``leaves(label)`` intersected with the universe (memoized)."""
        key = str(label)
        try:
            return self._restricted[key]
        except KeyError:
            resolved = self.leaves(key)
            if self.universe is not None:
                resolved = resolved & self.universe
            self._guard(self._restricted)
            self._restricted[key] = resolved
            return resolved

    def size(self, label: object) -> int:
        """Number of original values ``label`` stands for (>= 1)."""
        return max(1, len(self.leaves(label)))

    def cost(self, label: object, domain_size: int | None = None) -> float:
        """Utility-loss charge of publishing ``label`` instead of an original item.

        An original item costs 0, a generalized item standing for ``n`` values
        costs ``(n - 1) / (domain - 1)``, the root costs 1.  ``domain_size``
        defaults to the size of the interpreter's universe.
        """
        if domain_size is None:
            domain_size = len(self.universe) if self.universe is not None else 0
        return generalization_cost(len(self.leaves(label)), domain_size)

    def span(self, label: object) -> tuple[float, float] | None:
        """Numeric bounds of an interval label (``None`` if not numeric)."""
        key = str(label)
        cached = self._spans.get(key)
        if cached is None:
            cached = label_span(key, self.hierarchy)
            self._guard(self._spans)
            self._spans[key] = _NO_SPAN if cached is None else cached
            return cached
        return None if cached is _NO_SPAN else cached  # type: ignore[return-value]

    # -- per-itemset aggregates -------------------------------------------------
    def covered_items(self, itemset: Iterable[str]) -> frozenset[str]:
        """Original universe items that remain (possibly generalized) in ``itemset``."""
        key = itemset if isinstance(itemset, frozenset) else frozenset(itemset)
        cached = self._covered.get(key)
        if cached is None:
            covered: set[str] = set()
            for label in key:
                covered |= self.restricted_leaves(label)
            cached = frozenset(covered)
            self._guard(self._covered)
            self._covered[key] = cached
        return cached

    def best_costs(self, itemset: Iterable[str]) -> Mapping[str, float]:
        """For each covered original item, the cost of its cheapest covering label.

        Items of the universe absent from the mapping are not covered by any
        label of ``itemset`` (i.e. they were suppressed) and should be charged
        the full cost of 1.  Costs are clamped to 1, matching how utility loss
        never charges more than outright suppression.
        """
        key = itemset if isinstance(itemset, frozenset) else frozenset(itemset)
        cached = self._best_costs.get(key)
        if cached is None:
            cached = {}
            for label in key:
                cost = min(1.0, self.cost(label))
                for item in self.restricted_leaves(label):
                    current = cached.get(item)
                    if current is None or cost < current:
                        cached[item] = cost
            self._guard(self._best_costs)
            self._best_costs[key] = cached
        return cached

    def frequency_weights(self, itemset: Iterable[str]) -> Mapping[str, float]:
        """Expected per-item support contribution of one anonymized itemset.

        Each label contributes ``1 / |restricted_leaves(label)|`` to every
        universe item it may stand for (uniformity assumption).
        """
        key = itemset if isinstance(itemset, frozenset) else frozenset(itemset)
        cached = self._weights.get(key)
        if cached is None:
            cached = {}
            for label in key:
                leaves = self.restricted_leaves(label)
                if not leaves:
                    continue
                weight = 1.0 / len(leaves)
                for item in leaves:
                    cached[item] = cached.get(item, 0.0) + weight
            self._guard(self._weights)
            self._weights[key] = cached
        return cached

    _guard = staticmethod(evict_when_full)


#: hierarchy -> {universe key -> interpreter}; hierarchies are held weakly.
_by_hierarchy: "weakref.WeakKeyDictionary[Hierarchy, dict]" = weakref.WeakKeyDictionary()
#: universe key -> interpreter, for the hierarchy-free algorithms (COAT/PCTA).
_no_hierarchy: dict[frozenset[str] | None, LabelInterpreter] = {}


def interpreter_for(
    hierarchy: Hierarchy | None = None,
    universe: Iterable[str] | None = None,
) -> LabelInterpreter:
    """The shared :class:`LabelInterpreter` for a (hierarchy, universe) pair.

    Two calls with the same hierarchy object and an equal universe return the
    same instance, so every metric computed over the same experiment resources
    shares one label cache.
    """
    key = None if universe is None else frozenset(str(item) for item in universe)
    if hierarchy is None:
        cache = _no_hierarchy
    else:
        cache = _by_hierarchy.get(hierarchy)
        if cache is None:
            cache = {}
            _by_hierarchy[hierarchy] = cache
    interpreter = cache.get(key)
    if interpreter is None:
        if len(cache) >= _MAX_FREE_INTERPRETERS:
            cache.clear()
        # Cached interpreters hold their hierarchy through a weak proxy:
        # a strong reference would keep the WeakKeyDictionary key alive
        # forever and the hierarchy (plus all its caches) could never be
        # collected.  The entry dies with the hierarchy; a stale interpreter
        # kept by a caller after dropping the hierarchy fails loudly
        # (ReferenceError) instead of silently resolving labels differently.
        referent = hierarchy if hierarchy is None else weakref.proxy(hierarchy)
        interpreter = LabelInterpreter(referent, key)
        cache[key] = interpreter
    return interpreter
