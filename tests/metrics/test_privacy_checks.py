"""Tests for privacy-guarantee verification."""

import pytest

from repro.datasets import Attribute, Dataset, Schema
from repro.exceptions import DatasetError
from repro.metrics import (
    candidate_support,
    equivalence_classes,
    is_k_anonymous,
    is_k_km_anonymous,
    is_km_anonymous,
    km_violations,
    min_class_size,
    privacy_report,
)


class TestKAnonymity:
    def test_equivalence_classes_use_quasi_identifiers_only(self, simple_relational):
        classes = equivalence_classes(simple_relational)
        assert len(classes) == 8  # every (Age, Zip) pair is unique

    def test_min_class_size_and_k_anonymity(self, simple_relational):
        assert min_class_size(simple_relational) == 1
        assert is_k_anonymous(simple_relational, 1)
        assert not is_k_anonymous(simple_relational, 2)

    def test_k_anonymous_after_grouping(self, simple_relational):
        anonymized = simple_relational.copy()
        for index in range(len(anonymized)):
            age = anonymized[index]["Age"]
            anonymized.set_value(index, "Age", "[21-24]" if age < 50 else "[51-54]")
            anonymized.set_value(index, "Zip", "*")
        assert is_k_anonymous(anonymized, 4)
        assert not is_k_anonymous(anonymized, 5)

    def test_empty_dataset_is_trivially_anonymous(self):
        dataset = Dataset(Schema([Attribute.numeric("Age")]))
        assert is_k_anonymous(dataset, 10)

    def test_invalid_k_rejected(self, simple_relational):
        with pytest.raises(DatasetError):
            is_k_anonymous(simple_relational, 0)


class TestKmAnonymity:
    def test_candidate_support_counts_possible_matches(self, simple_transactions):
        assert candidate_support(simple_transactions, ["a", "b"]) == 3
        assert candidate_support(simple_transactions, ["missing"]) == 0

    def test_candidate_support_sees_through_generalization(self, simple_transactions):
        generalized = simple_transactions.copy()
        for index, record in enumerate(simple_transactions):
            items = [
                "(a,b)" if item in {"a", "b"} else item for item in record["Items"]
            ]
            generalized.set_value(index, "Items", items)
        # Any record holding (a,b) could contain a.
        assert candidate_support(generalized, ["a"]) >= candidate_support(
            simple_transactions, ["a"]
        )

    def test_km_violations_found_in_original_data(self, simple_transactions):
        violations = km_violations(simple_transactions, k=3, m=2)
        assert violations  # e.g. {d, e} appears in only 2 records
        assert all(0 < violation.support < 3 for violation in violations)

    def test_km_anonymity_of_fully_generalized_data(self, simple_transactions):
        generalized = simple_transactions.copy()
        universe = sorted(simple_transactions.item_universe())
        label = "(" + ",".join(universe) + ")"
        for index, record in enumerate(simple_transactions):
            generalized.set_value(index, "Items", [label] if record["Items"] else [])
        assert is_km_anonymous(
            generalized, k=10, m=2, universe=simple_transactions.item_universe()
        )

    def test_km_check_respects_max_violations(self, simple_transactions):
        limited = km_violations(simple_transactions, k=5, m=2, max_violations=2)
        assert len(limited) == 2

    def test_invalid_parameters(self, simple_transactions):
        with pytest.raises(DatasetError):
            km_violations(simple_transactions, k=0, m=1)
        with pytest.raises(DatasetError):
            km_violations(simple_transactions, k=2, m=0)


class TestKKmAnonymity:
    def make_rt(self, rows):
        schema = Schema(
            [Attribute.categorical("City"), Attribute.transaction("Items")]
        )
        return Dataset(schema, rows)

    def test_satisfied_case(self):
        dataset = self.make_rt(
            [
                {"City": "Athens", "Items": ["a"]},
                {"City": "Athens", "Items": ["a"]},
                {"City": "Patras", "Items": ["b"]},
                {"City": "Patras", "Items": ["b"]},
            ]
        )
        assert is_k_km_anonymous(dataset, k=2, m=1)

    def test_violated_by_relational_part(self):
        dataset = self.make_rt(
            [
                {"City": "Athens", "Items": ["a"]},
                {"City": "Patras", "Items": ["a"]},
            ]
        )
        assert not is_k_km_anonymous(dataset, k=2, m=1)

    def test_violated_by_transaction_part_within_class(self):
        dataset = self.make_rt(
            [
                {"City": "Athens", "Items": ["a"]},
                {"City": "Athens", "Items": ["b"]},
            ]
        )
        # The class is k-anonymous (size 2) but knowing item "a" isolates one record.
        assert not is_k_km_anonymous(dataset, k=2, m=1)

    def test_privacy_report_fields(self, toy_dataset):
        report = privacy_report(toy_dataset, k=2, m=1)
        assert report["records"] == len(toy_dataset)
        assert "k_anonymous" in report
        assert "km_anonymous" in report
