"""Dataset model, I/O, editing, statistics and synthetic generators."""

from __future__ import annotations

from repro.datasets.attributes import Attribute, AttributeKind, Schema
from repro.datasets.csv_io import (
    load_csv,
    read_csv_text,
    save_csv,
    write_csv_text,
)
from repro.datasets.dataset import Dataset, Record
from repro.datasets.domains import DatasetDomains
from repro.datasets.editor import DatasetEditor
from repro.datasets.generators import (
    ADVERSARIAL_GENERATORS,
    generate_adult_like,
    generate_correlated_rt,
    generate_market_basket,
    generate_outlier_rt,
    generate_rt_dataset,
    generate_skewed_rt,
    toy_rt_dataset,
)
from repro.datasets.statistics import (
    attribute_histogram,
    dataset_summary,
    frequency_relative_error,
    generalized_value_frequencies,
    numeric_histogram,
    value_frequencies,
)

__all__ = [
    "Attribute",
    "AttributeKind",
    "Schema",
    "Dataset",
    "DatasetDomains",
    "Record",
    "DatasetEditor",
    "load_csv",
    "read_csv_text",
    "save_csv",
    "write_csv_text",
    "ADVERSARIAL_GENERATORS",
    "generate_adult_like",
    "generate_correlated_rt",
    "generate_market_basket",
    "generate_outlier_rt",
    "generate_rt_dataset",
    "generate_skewed_rt",
    "toy_rt_dataset",
    "attribute_histogram",
    "dataset_summary",
    "frequency_relative_error",
    "generalized_value_frequencies",
    "numeric_histogram",
    "value_frequencies",
]
