"""Demonstration scenario 2: "Comparing methods for RT-datasets".

Reproduces the Comparison mode of SECRETA (Figure 4): several configurations
— each pairing a relational and a transaction algorithm under a bounding
method with fixed parameters — are executed across a varying parameter, and
the utility (ARE, GCP, UL) and runtime series are plotted side by side.

Run with::

    python examples/comparison_mode_rt.py [output-directory]
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro import Session, rt_config
from repro.frontend.plotting import comparison_figure


def main(output_directory: str | None = None) -> None:
    output = Path(output_directory) if output_directory else None
    session = Session.generate_rt(n_records=300, n_items=25, seed=19)

    # The "experimenter area": one configuration per method to compare.
    configurations = [
        rt_config("cluster", "apriori", bounding="rtmerger", m=2, delta=0.6,
                  label="Cluster+Apriori/RTmerger"),
        rt_config("incognito", "apriori", bounding="rmerger", m=2, delta=0.6,
                  label="Incognito+Apriori/Rmerger"),
        rt_config("cluster", "lra", bounding="tmerger", m=2, delta=0.6,
                  label="Cluster+LRA/Tmerger"),
    ]

    # Varying parameter: k from 5 to 25 with step 10 (start/end/step, exactly
    # like the GUI sliders).
    report = session.compare(configurations, "k", 5, 25, 10)

    for indicator in ("are", "relational_gcp", "transaction_ul", "runtime_seconds"):
        figure = comparison_figure(report, indicator)
        print(figure.to_text())
        print()

    print("Tabular view (ARE):")
    for row in report.table("are"):
        print("  ", {key: round(value, 4) if isinstance(value, float) else value
                     for key, value in row.items()})

    if output is not None:
        session.exporter(output).export_comparison(report, stem="scenario2")
        print(f"\nExported comparison series and figures to {output}")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else None)
