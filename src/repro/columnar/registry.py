"""Crash-safe bookkeeping of owned shared-memory segments.

``SharedDatasetExport`` unlinks its segment on ``close()`` and carries a
``weakref.finalize`` guard — but a finalizer cannot run in a process that
dies by SIGKILL (OOM killer, ``kill -9``, a hard container stop).  A segment
orphaned that way lives in ``/dev/shm`` until reboot, silently eating memory
across runs.

The fix is the classic write-ahead discipline:

1. **register before create** — the exporter picks its segment name up
   front, writes it to a per-process *sidecar file* (one name per line),
   and only then creates the segment.  A crash between the two steps
   leaves a registry entry with no segment, which the reaper treats as
   already-cleaned.
2. **clear after unlink** — a clean ``close()`` unlinks the segment and
   then removes the name from the sidecar; an empty sidecar is deleted.
3. **reap on startup** — :func:`reap_orphaned_segments` runs when a
   :class:`~repro.engine.pool.WorkerPool` starts: every sidecar whose
   owning pid is no longer alive has its listed segments unlinked and the
   sidecar removed.  Sidecars of live processes are left strictly alone.

Sidecars live under :func:`registry_dir` (``$REPRO_SHM_REGISTRY`` or a
per-user directory under the system temp dir), named ``<pid>.segments``;
pid reuse is handled by the registering process truncating its own stale
sidecar, if any, on first registration.
"""

from __future__ import annotations

import errno
import getpass
import os
import secrets
import tempfile
from multiprocessing import shared_memory
from pathlib import Path

#: Environment variable overriding the sidecar directory (tests point it at
#: a tmp path so concurrent suites cannot see each other's sidecars).
REGISTRY_ENV = "REPRO_SHM_REGISTRY"

_SIDECAR_SUFFIX = ".segments"

#: Set once this process has truncated any stale sidecar left by a previous
#: owner of its pid.
_claimed_pids: set[int] = set()


def registry_dir() -> Path:
    """The directory holding per-process sidecar files (created on demand)."""
    override = os.environ.get(REGISTRY_ENV)
    if override:
        path = Path(override)
    else:
        try:
            user = getpass.getuser()
        except (KeyError, OSError):  # pragma: no cover - no passwd entry
            user = str(os.getuid()) if hasattr(os, "getuid") else "user"
        path = Path(tempfile.gettempdir()) / f"repro-shm-{user}"
    path.mkdir(parents=True, exist_ok=True)
    return path


def _sidecar_path(pid: int) -> Path:
    return registry_dir() / f"{pid}{_SIDECAR_SUFFIX}"


def new_segment_name() -> str:
    """A fresh segment name unique enough to never collide in practice.

    Naming the segment ourselves (rather than letting ``SharedMemory``
    choose) is what makes *register before create* possible.
    """
    return f"repro_{os.getpid()}_{secrets.token_hex(8)}"


def register_segment(name: str) -> None:
    """Record ``name`` as owned by this process — call *before* creating it."""
    pid = os.getpid()
    path = _sidecar_path(pid)
    if pid not in _claimed_pids:
        # First registration after fork/spawn/start: a sidecar under our pid
        # can only be a leftover from a dead previous owner of the pid.
        _claimed_pids.add(pid)
        path.unlink(missing_ok=True)
    with path.open("a", encoding="utf-8") as sidecar:
        sidecar.write(f"{name}\n")
        sidecar.flush()
        os.fsync(sidecar.fileno())


def clear_segment(name: str) -> None:
    """Drop ``name`` from this process's sidecar — call *after* unlinking."""
    path = _sidecar_path(os.getpid())
    try:
        lines = path.read_text(encoding="utf-8").splitlines()
    except FileNotFoundError:
        return
    remaining = [line for line in lines if line and line != name]
    if remaining:
        path.write_text("".join(f"{line}\n" for line in remaining), encoding="utf-8")
    else:
        path.unlink(missing_ok=True)


def _pid_alive(pid: int) -> bool:
    """Whether ``pid`` names a live process (EPERM counts as alive)."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except OSError as error:
        return error.errno == errno.EPERM
    return True


def _unlink_named_segment(name: str) -> bool:
    """Unlink segment ``name`` if it still exists; never raise."""
    try:
        segment = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    except OSError:  # pragma: no cover - defensive (permissions, EINTR)
        return False
    try:
        segment.close()
        segment.unlink()
    except FileNotFoundError:  # pragma: no cover - lost a race to another reaper
        return False
    except OSError:  # pragma: no cover - defensive
        return False
    return True


def reap_orphaned_segments() -> list[str]:
    """Unlink every segment whose registering process is dead.

    Returns the names actually unlinked.  Sidecars of live processes —
    including this one — are never touched, so a concurrently running pool
    keeps its exports.
    """
    reaped: list[str] = []
    own_pid = os.getpid()
    for sidecar in registry_dir().glob(f"*{_SIDECAR_SUFFIX}"):
        try:
            pid = int(sidecar.stem)
        except ValueError:
            continue
        if pid == own_pid or _pid_alive(pid):
            continue
        try:
            names = sidecar.read_text(encoding="utf-8").splitlines()
        except OSError:  # pragma: no cover - lost a race to another reaper
            continue
        for name in names:
            if name and _unlink_named_segment(name):
                reaped.append(name)
        sidecar.unlink(missing_ok=True)
    return reaped
