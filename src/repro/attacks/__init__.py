"""Adversarial re-identification attack simulation.

Empirically validates the k / k^m / (k, k^m) guarantees by playing the
prior-knowledge adversary against anonymized outputs, instead of only
asserting the guarantees analytically (:mod:`repro.metrics.privacy_checks`).
"""

from __future__ import annotations

from repro.attacks.coverage import (
    AttributeCoverage,
    best_knowledge,
    coverage_for,
    knowledge_combos,
)
from repro.attacks.simulator import (
    MAX_WITNESSES,
    AttackResult,
    finalize_sizes,
    item_attack,
    qi_attack,
    rt_attack,
    simulate_attacks,
)

__all__ = [
    "AttackResult",
    "AttributeCoverage",
    "MAX_WITNESSES",
    "best_knowledge",
    "coverage_for",
    "finalize_sizes",
    "item_attack",
    "knowledge_combos",
    "qi_attack",
    "rt_attack",
    "simulate_attacks",
]
