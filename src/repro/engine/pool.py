"""A persistent process pool with shared-memory dataset fan-out.

SECRETA's backend "invokes one or more instances of the Anonymization
Module"; :class:`WorkerPool` is the process-backed version of that fleet.
It differs from the ad-hoc ``ProcessPoolExecutor`` the runner used to create
per call in two ways:

* **persistent workers** — the pool is spawned once and reused across sweeps
  and comparisons, so per-run fan-out cost is task submission, not process
  creation, and worker-side caches (attached shared datasets, memoized
  interpreters) survive between tasks;
* **shared datasets** — :meth:`WorkerPool.share` exports a dataset's columnar
  arrays into a shared-memory segment
  (:class:`~repro.columnar.shared.SharedDatasetExport`) and returns the small
  picklable manifest; tasks ship the manifest instead of the dataset, and
  workers attach zero-copy views (memoized per process).

Since PR 7 the pool is also the engine's :class:`~repro.engine.resilience`
process backend: :meth:`map` submits per-task futures under an
:class:`~repro.engine.resilience.ExecutionPolicy` (bounded retries, task
timeouts, a ``process → thread → sequential`` degradation ladder), and
:meth:`respawn` is the crash-recovery hook — it replaces a broken executor,
terminates hung workers, re-exports any shared segment a crashed worker
generation's resource tracker destroyed, and hands back a task remapper so
only unfinished tasks are replayed.

Segment hygiene is crash-safe end to end: every export registers its segment
name in a sidecar file *before* creation (:mod:`repro.columnar.registry`),
constructing a pool reaps segments orphaned by hard-killed previous
processes, exports are evicted automatically when the last reference to
their dataset is dropped (``weakref.finalize``), and :meth:`close` (or
leaving the context manager) unlinks everything the pool still owns.
"""

from __future__ import annotations

import functools
import os
import pickle
import weakref
from concurrent.futures import Future, ProcessPoolExecutor
from typing import TYPE_CHECKING, Any, Callable, Iterable, Sequence, TypeVar

from repro.columnar.registry import reap_orphaned_segments
from repro.columnar.shared import SharedDatasetExport, SharedDatasetManifest
from repro.engine.resilience import DEFAULT_POLICY, ExecutionPolicy, RunReport, execute_tasks
from repro.exceptions import ConfigurationError, SecretaError

if TYPE_CHECKING:
    from repro.datasets.dataset import Dataset
    from repro.engine.checkpoint import CheckpointStore

TaskT = TypeVar("TaskT")
ResultT = TypeVar("ResultT")

#: Seconds to wait for a terminated worker process before abandoning it.
_TERMINATE_GRACE = 5.0


def validate_max_workers(max_workers: int | None) -> None:
    """Reject zero/negative worker counts instead of silently defaulting."""
    if max_workers is not None and max_workers < 1:
        raise ConfigurationError(
            f"max_workers must be a positive integer or None, got {max_workers!r}"
        )


def require_picklable_worker(worker: Callable[..., Any]) -> None:
    """Fail fast, with a clear message, on workers process mode cannot ship."""
    try:
        pickle.dumps(worker)
    except SecretaError:
        # A __reduce__ hook that already raised a typed error stays as-is;
        # wrapping it again would bury the specific failure.
        raise
    except Exception as error:
        raise ConfigurationError(
            f"mode='process' requires a picklable worker callable, but "
            f"{worker!r} cannot be pickled ({error}); define the worker as a "
            f"module-level function instead of a lambda, closure or bound "
            f"method of an unpicklable object"
        ) from error


def _evict_export(
    pool_ref: "weakref.ref[WorkerPool]", key: int, export: SharedDatasetExport
) -> None:
    """``weakref.finalize`` callback: the last dataset reference is gone, so
    the export has no possible future user — unlink its segment and drop the
    pool's cache entry.  Module-level so the finalizer cannot keep the pool
    alive through a closure."""
    pool = pool_ref()
    if pool is not None:
        pool._exports.pop(key, None)
    export.close()


def _remap_task(mapping: dict[str, SharedDatasetManifest], task: Any) -> Any:
    """Swap stale shared-dataset manifests inside a task payload.

    Tasks are either a manifest, a tuple carrying one, or plain values; the
    remapper rewrites exactly the manifest slots whose segment went stale
    and leaves everything else identical — replayed tasks must stay
    byte-for-byte equivalent apart from the new segment name.
    """
    if isinstance(task, SharedDatasetManifest):
        return mapping.get(task.segment, task)
    if isinstance(task, tuple):
        return tuple(_remap_task(mapping, element) for element in task)
    return task


class WorkerPool:
    """A reusable process pool plus the shared-memory exports it owns.

    Parameters
    ----------
    max_workers:
        Pool size; defaults to ``os.cpu_count()``.  Zero or negative values
        raise :class:`~repro.exceptions.ConfigurationError`.
    mp_context:
        Optional ``multiprocessing`` context (e.g. ``get_context("spawn")``);
        defaults to the platform's default start method.
    policy:
        The :class:`~repro.engine.resilience.ExecutionPolicy` :meth:`map`
        applies when the caller does not pass one.
    """

    def __init__(
        self,
        max_workers: int | None = None,
        mp_context: Any | None = None,
        policy: ExecutionPolicy | None = None,
    ) -> None:
        validate_max_workers(max_workers)
        self._max_workers = max_workers or (os.cpu_count() or 1)
        self._mp_context = mp_context
        self._policy = policy or DEFAULT_POLICY
        self._executor: ProcessPoolExecutor | None = None
        #: id(dataset) -> (dataset weakref, export, eviction finalizer).  The
        #: weak reference lets a dropped dataset free its segment immediately
        #: (via the finalizer) instead of pinning arrays for the pool's life.
        self._exports: dict[
            int,
            tuple[
                "weakref.ref[Any]", SharedDatasetExport, "weakref.finalize"
            ],
        ] = {}
        self._closed = False
        #: Segments orphaned by dead processes, unlinked at construction.
        self.reaped_at_startup: tuple[str, ...] = tuple(reap_orphaned_segments())

    # -- introspection -------------------------------------------------------
    @property
    def max_workers(self) -> int:
        return self._max_workers

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def policy(self) -> ExecutionPolicy:
        return self._policy

    def segment_names(self) -> list[str]:
        """Names of the live shared-memory segments this pool owns."""
        return [export.segment_name for _, export, _ in self._exports.values()]

    # -- sharing -------------------------------------------------------------
    def share(self, dataset: "Dataset") -> SharedDatasetManifest:
        """Export ``dataset`` (once) and return its picklable manifest.

        Repeated calls with the same, unmutated dataset reuse the export; a
        mutated dataset (its columnar cache was invalidated) is re-exported
        and the stale segment unlinked immediately.  The pool holds the
        dataset only weakly: dropping the last outside reference evicts the
        export and unlinks its segment right away.
        """
        self._require_open()
        key = id(dataset)
        entry = self._exports.get(key)
        if entry is not None:
            held_ref, export, finalizer = entry
            if (
                held_ref() is dataset
                and export.matches(dataset)
                and export.segment_alive()
            ):
                return export.manifest
            finalizer.detach()
            export.close()
            self._exports.pop(key, None)
        export = SharedDatasetExport(dataset)
        finalizer = weakref.finalize(
            dataset, _evict_export, weakref.ref(self), key, export
        )
        finalizer.atexit = False  # pool close / export finalizer covers exit
        self._exports[key] = (weakref.ref(dataset), export, finalizer)
        return export.manifest

    # -- the resilience engine's ProcessControl hooks ------------------------
    def submit(self, fn: Callable[..., Any], *args: Any) -> "Future[Any]":
        """Submit one call to the pool's executor (spawned lazily)."""
        self._require_open()
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self._max_workers, mp_context=self._mp_context
            )
        return self._executor.submit(fn, *args)

    def respawn(self, reason: str) -> Callable[[Any], Any] | None:
        """Replace the executor after a crash, hang or breakage.

        Tears the current executor down without waiting (terminating any
        still-alive worker, which reclaims hung processes), re-exports every
        shared dataset whose segment was destroyed by the dying worker
        generation, and returns a remapper that rewrites stale manifests
        inside unfinished task payloads (``None`` when every segment
        survived).  The next :meth:`submit` spawns the replacement executor.
        """
        self._require_open()
        self._shutdown_executor()
        mapping = self._refresh_exports()
        if not mapping:
            return None
        return functools.partial(_remap_task, mapping)

    def _shutdown_executor(self) -> None:
        """Drop the executor and make sure its workers are actually gone."""
        executor, self._executor = self._executor, None
        if executor is None:
            return
        # A broken pool's processes are usually dead already; a *hung* worker
        # is not — terminate the survivors so the machine gets its CPUs back.
        processes = list(getattr(executor, "_processes", {}).values())
        executor.shutdown(wait=False, cancel_futures=True)
        for process in processes:
            try:
                if process.is_alive():
                    process.terminate()
            except (OSError, ValueError):  # pragma: no cover - already gone
                continue
        for process in processes:
            try:
                process.join(timeout=_TERMINATE_GRACE)
            except (OSError, ValueError, AssertionError):  # pragma: no cover
                continue

    def _refresh_exports(self) -> dict[str, SharedDatasetManifest]:
        """Re-export datasets whose shared segment no longer exists.

        Returns ``{stale segment name: replacement manifest}``.  Exports
        whose dataset has been garbage-collected are simply dropped — no
        unfinished task can still reference them except through a manifest,
        and such a task would have failed its attempt already.
        """
        mapping: dict[str, SharedDatasetManifest] = {}
        for key, (held_ref, export, finalizer) in list(self._exports.items()):
            if export.segment_alive():
                continue
            dataset = held_ref()
            finalizer.detach()
            export.close()
            self._exports.pop(key, None)
            if dataset is None:
                continue
            stale_name = export.segment_name
            mapping[stale_name] = self.share(dataset)
        return mapping

    # -- execution -----------------------------------------------------------
    def map(
        self,
        worker: Callable[[TaskT], ResultT],
        tasks: Sequence[TaskT] | Iterable[TaskT],
        policy: ExecutionPolicy | None = None,
        report: RunReport | None = None,
    ) -> list[ResultT]:
        """Apply ``worker`` to every task, preserving order, fault-tolerantly.

        Each task is submitted as its own future and executed under
        ``policy`` (the pool's default when omitted): bounded retries with
        deterministic backoff, optional per-task timeouts, executor respawn
        on crashes, and degradation to thread/sequential execution for tasks
        that repeatedly kill their workers.  ``report``, when given, is
        filled in place with the full per-task attempt history.
        """
        self._require_open()
        require_picklable_worker(worker)
        tasks = list(tasks)
        if not tasks:
            return []
        return execute_tasks(
            tasks,
            worker,
            policy or self._policy,
            backend="process",
            process_control=self,
            max_workers=self._max_workers,
            report=report,
        )

    # -- lifecycle -----------------------------------------------------------
    def close(self) -> None:
        """Shut the workers down and unlink every owned segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        executor, self._executor = self._executor, None
        try:
            if executor is not None:
                executor.shutdown(wait=True)
        finally:
            exports, self._exports = self._exports, {}
            for _, export, finalizer in exports.values():
                finalizer.detach()
                export.close()

    def _require_open(self) -> None:
        if self._closed:
            raise ConfigurationError("the worker pool has been closed")

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (
            f"WorkerPool(max_workers={self._max_workers}, "
            f"exports={len(self._exports)}, {state})"
        )


def fan_out_shared(
    dataset: "Dataset",
    make_tasks: Callable[[Any], Sequence[Any]],
    worker: Callable[..., Any],
    pool: WorkerPool | None = None,
    max_workers: int | None = None,
    policy: ExecutionPolicy | None = None,
    report: RunReport | None = None,
    checkpoint: "CheckpointStore | None" = None,
    checkpoint_keys: Sequence[str] | None = None,
) -> list[Any]:
    """Run ``worker`` over ``make_tasks(manifest)`` with a shared dataset.

    The one orchestration pattern the experiment and comparator both need:
    export ``dataset`` to shared memory, build the tasks around the manifest,
    and fan them out — on the caller's persistent ``pool`` when given (the
    export is cached there), otherwise on an ephemeral pool sized to the
    task count and torn down (segments unlinked) before returning.  The
    fan-out runs under ``policy`` (the pool's default when omitted) and
    fills ``report`` in place when one is given.
    """
    from repro.engine.runner import run_many

    validate_max_workers(max_workers)
    if pool is not None:
        return run_many(
            make_tasks(pool.share(dataset)),
            worker,
            mode="process",
            pool=pool,
            policy=policy,
            report=report,
            checkpoint=checkpoint,
            checkpoint_keys=checkpoint_keys,
        )
    # The ephemeral pool (rather than a bare export) owns the segment so the
    # crash-recovery path can re-export it; its executor is spawned lazily,
    # which leaves room to right-size the pool once the task count is known.
    with WorkerPool(max_workers=max_workers, policy=policy) as ephemeral:
        tasks = make_tasks(ephemeral.share(dataset))
        if max_workers is None:
            ephemeral._max_workers = min(len(tasks) or 1, os.cpu_count() or 1)
        return run_many(
            tasks,
            worker,
            mode="process",
            pool=ephemeral,
            policy=policy,
            report=report,
            checkpoint=checkpoint,
            checkpoint_keys=checkpoint_keys,
        )
