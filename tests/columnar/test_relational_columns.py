"""Unit tests for the relational columnar views (codes + numeric arrays)."""

import numpy as np
import pytest

from repro.columnar import CategoricalColumn, NumericColumn
from repro.datasets import Attribute, Dataset, Schema


def make_dataset(rows) -> Dataset:
    schema = Schema([Attribute.numeric("Age"), Attribute.categorical("City")])
    return Dataset(schema, [{"Age": age, "City": city} for age, city in rows])


class TestCategoricalColumn:
    def test_codes_in_first_seen_order(self):
        dataset = make_dataset([(1, "b"), (2, "a"), (3, "b"), (4, None)])
        column = dataset.columnar("City")
        assert isinstance(column, CategoricalColumn)
        assert column.values == ("b", "a", None)
        assert column.codes.tolist() == [0, 1, 0, 2]
        assert column.codes.dtype == np.int32

    def test_code_of_and_take(self):
        dataset = make_dataset([(1, "x"), (2, "y"), (3, "x")])
        column = dataset.columnar("City")
        assert column.code_of("y") == 1
        assert column.code_of("missing") is None
        table = np.array([0.25, 0.75])
        assert column.take(table).tolist() == [0.25, 0.75, 0.25]

    def test_equal_values_share_a_code(self):
        # 25 and 25.0 are the same dictionary key, exactly like group_by.
        dataset = make_dataset([(25, "a"), (25.0, "a")])
        column = dataset.columnar("Age")
        assert column.codes.tolist() == [0, 0]

    def test_string_codes_collapse_and_send_none_to_sentinel(self):
        dataset = make_dataset([(1, "a"), (2, None), (3, "b"), (4, "a")])
        cells, labels = dataset.columnar("City").string_codes()
        assert labels == ("a", "b")
        assert cells.tolist() == [0, 2, 1, 0]  # None -> sentinel len(labels)
        # Cached on the column.
        assert dataset.columnar("City").string_codes() is dataset.columnar(
            "City"
        ).string_codes()

    def test_string_codes_distinguish_dict_equal_cells(self):
        # 25 and 25.0 share a value code (dictionary-key equality) but the
        # string-identity view must keep them apart, like str(value) does.
        dataset = make_dataset([(25, "a"), (25.0, "a"), ("[20-40]", "a")])
        column = dataset.columnar("Age")
        assert column.codes.tolist() == [0, 0, 1]
        cells, labels = column.string_codes()
        assert labels == ("25", "25.0", "[20-40]")
        assert cells.tolist() == [0, 1, 2]

    def test_empty_dataset(self):
        dataset = make_dataset([])
        column = dataset.columnar("City")
        assert column.n_records == 0
        assert column.values == ()


class TestNumericColumn:
    def test_numbers_nan_for_missing_and_labels(self):
        dataset = make_dataset([(30, "a"), (None, "a"), (45.5, "a")])
        dataset.set_value(0, "Age", "[20-40]")  # generalized label
        column = dataset.columnar("Age")
        assert isinstance(column, NumericColumn)
        numbers = column.numbers
        assert np.isnan(numbers[0]) and np.isnan(numbers[1])
        assert numbers[2] == 45.5
        # The code view still distinguishes the label from the missing cell.
        assert len(column.values) == 3

    def test_all_missing_column(self):
        dataset = make_dataset([(None, "a"), (None, "b")])
        column = dataset.columnar("Age")
        assert np.isnan(column.numbers).all()
        assert column.values == (None,)


class TestCachingAndInvalidation:
    def test_cached_until_mutation(self):
        dataset = make_dataset([(1, "a"), (2, "b")])
        first = dataset.columnar("City")
        assert dataset.columnar("City") is first
        dataset.set_value(0, "City", "c")
        rebuilt = dataset.columnar("City")
        assert rebuilt is not first
        assert rebuilt.values == ("c", "b")

    def test_mutating_one_attribute_keeps_the_other(self):
        dataset = make_dataset([(1, "a"), (2, "b")])
        ages = dataset.columnar("Age")
        dataset.set_value(0, "City", "c")
        assert dataset.columnar("Age") is ages

    def test_append_invalidates_all(self):
        dataset = make_dataset([(1, "a")])
        dataset.columnar("Age")
        dataset.append({"Age": 2, "City": "b"})
        assert dataset.columnar("Age").n_records == 2
