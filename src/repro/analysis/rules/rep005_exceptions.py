"""REP005 — exception discipline in library code.

Two habits this rule bans inside the ``[rep005] scope`` prefixes:

* ``except Exception`` (or bare ``except``) that swallows — every broad
  handler must re-raise or convert into a ``repro.exceptions`` type via
  ``raise ... from error``, unless the site is allow-listed in the manifest
  as defensive cleanup (e.g. best-effort segment unlinking).
* ``assert`` for runtime validation — asserts vanish under ``python -O``,
  so invariants the algorithms rely on must raise a typed error instead.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.analysis.core import Finding, ModuleContext, Rule, register
from repro.analysis.manifest import InvariantManifest

_BROAD_NAMES = frozenset({"Exception", "BaseException"})


def _is_broad(handler: ast.ExceptHandler) -> bool:
    kind = handler.type
    if kind is None:
        return True
    if isinstance(kind, ast.Name):
        return kind.id in _BROAD_NAMES
    if isinstance(kind, ast.Tuple):
        return any(
            isinstance(element, ast.Name) and element.id in _BROAD_NAMES
            for element in kind.elts
        )
    return False


def _body_nodes(handler: ast.ExceptHandler) -> Iterator[ast.AST]:
    """Walk the handler body without descending into nested functions."""
    stack: list[ast.AST] = list(handler.body)
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            stack.append(child)


@register
class ExceptionDiscipline(Rule):
    code = "REP005"
    name = "exception-discipline"
    summary = "broad except must re-raise or convert; no assert for runtime validation"
    explanation = (
        "Inside the [rep005] scope, `except Exception` (or a bare `except`) "
        "that neither re-raises nor converts the error hides failures from "
        "callers who guard workflows with `except SecretaError`.  Convert "
        "with `raise SomeSecretaError(...) from error`, re-raise, or — for "
        "genuinely best-effort cleanup like segment unlinking — allow-list "
        "the enclosing function in the manifest's allowed_handlers.  "
        "Separately, `assert` is a debugging aid stripped by `python -O`; "
        "validation the library depends on at runtime must raise a typed "
        "repro.exceptions error instead."
    )

    def check_module(
        self, module: ModuleContext, manifest: InvariantManifest
    ) -> Iterable[Finding]:
        scope = manifest.exception_scope
        if scope and not module.relpath.startswith(tuple(scope)):
            return
        allowed = frozenset(manifest.allowed_handlers)
        for node in module.walk():
            if isinstance(node, ast.ExceptHandler) and _is_broad(node):
                site = f"{module.relpath}::{module.qualname(node)}"
                if site in allowed:
                    continue
                if any(isinstance(inner, ast.Raise) for inner in _body_nodes(node)):
                    continue
                yield module.finding(
                    self,
                    node,
                    "broad except swallows the error; re-raise, convert to a "
                    "repro.exceptions type with 'raise ... from', or "
                    "allow-list this cleanup site in the manifest",
                )
            elif isinstance(node, ast.Assert):
                yield module.finding(
                    self,
                    node,
                    "assert used for runtime validation; raise a typed "
                    "repro.exceptions error instead (asserts vanish under "
                    "python -O)",
                )
