"""Visitor core of the invariant linter: modules, findings, rules, projects.

The framework is deliberately small: a :class:`ModuleContext` wraps one
parsed source file (AST + parent links + qualified names + suppression
comments), a :class:`Rule` contributes findings per module and, for
cross-file invariants, once per :class:`Project` after every module has been
visited.  Everything is pure ``ast``/stdlib — the linter must run in the
barest CI container before any dependency is installed.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterable, Iterator, Sequence

from repro.analysis.manifest import InvariantManifest
from repro.exceptions import AnalysisError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analysis.graph import ProjectGraph

#: ``# repro: allow[REP001] -- reason`` (also accepts ``:`` or an em-dash
#: before the reason, and a comma-separated code list).
_SUPPRESSION = re.compile(
    r"#\s*repro:\s*allow\[(?P<codes>[A-Za-z]+\d+(?:\s*,\s*[A-Za-z]+\d+)*)\]"
    r"(?:\s*(?:--|—|:)\s*(?P<reason>.*?))?\s*$"
)

_CODE_FORMAT = re.compile(r"^REP\d{3}$")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    code: str
    message: str
    path: str  # root-relative POSIX path
    line: int
    column: int
    symbol: str = ""  # enclosing qualified name, "" at module level
    #: Set by the driver, not by rules:
    suppressed: bool = False
    suppression_reason: str = ""
    baselined: bool = False
    baseline_reason: str = ""

    @property
    def is_new(self) -> bool:
        """Whether the finding should fail the run."""
        return not (self.suppressed or self.baselined)

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.column}"


@dataclass(frozen=True)
class Suppression:
    """One parsed ``# repro: allow[...]`` comment."""

    line: int
    codes: frozenset[str]
    reason: str
    #: True when the comment sits alone on its line, in which case it covers
    #: the next line instead of its own.
    standalone: bool


class ModuleContext:
    """One parsed source module plus the derived lookups rules need."""

    def __init__(self, root: Path, path: Path, source: str) -> None:
        self.root = root
        self.path = path
        self.relpath = path.relative_to(root).as_posix()
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=str(path))
        self._parents: dict[ast.AST, ast.AST] = {}
        self._qualnames: dict[ast.AST, str] = {}
        self._link(self.tree, parent=None, scope="")
        self.suppressions, self.bad_suppressions = self._parse_suppressions()

    # -- construction ---------------------------------------------------------
    def _link(self, node: ast.AST, parent: ast.AST | None, scope: str) -> None:
        """Record parent links and the enclosing qualified name of every node."""
        if parent is not None:
            self._parents[node] = parent
        self._qualnames[node] = scope
        child_scope = scope
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            child_scope = f"{scope}.{node.name}" if scope else node.name
            self._qualnames[node] = child_scope
        for child in ast.iter_child_nodes(node):
            self._link(child, parent=node, scope=child_scope)

    def _parse_suppressions(self) -> tuple[list[Suppression], list[Finding]]:
        suppressions: list[Suppression] = []
        problems: list[Finding] = []
        for lineno, text in enumerate(self.lines, start=1):
            match = _SUPPRESSION.search(text)
            if match is None:
                continue
            codes = frozenset(
                code.strip() for code in match.group("codes").split(",")
            )
            reason = (match.group("reason") or "").strip()
            standalone = text.lstrip().startswith("#")
            unknown = sorted(code for code in codes if not _CODE_FORMAT.match(code))
            if unknown:
                problems.append(
                    Finding(
                        code="REP000",
                        message=(
                            f"suppression names unknown code(s) {unknown}; "
                            f"expected REPnnn"
                        ),
                        path=self.relpath,
                        line=lineno,
                        column=0,
                    )
                )
                continue
            if not reason:
                problems.append(
                    Finding(
                        code="REP000",
                        message=(
                            "suppression without a reason; write "
                            "'# repro: allow[REPnnn] -- why this is safe'"
                        ),
                        path=self.relpath,
                        line=lineno,
                        column=0,
                    )
                )
                continue
            suppressions.append(
                Suppression(
                    line=lineno, codes=codes, reason=reason, standalone=standalone
                )
            )
        return suppressions, problems

    # -- lookups --------------------------------------------------------------
    def parent(self, node: ast.AST) -> ast.AST | None:
        return self._parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        current = self._parents.get(node)
        while current is not None:
            yield current
            current = self._parents.get(current)

    def qualname(self, node: ast.AST) -> str:
        """The qualified name of the scope enclosing ``node``."""
        return self._qualnames.get(node, "")

    def enclosing_function(
        self, node: ast.AST
    ) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return ancestor
        return None

    def walk(self) -> Iterator[ast.AST]:
        return ast.walk(self.tree)

    def suppression_for(self, finding: Finding) -> Suppression | None:
        """The suppression covering ``finding``'s line, if any."""
        for suppression in self.suppressions:
            if finding.code not in suppression.codes:
                continue
            covered = (
                suppression.line + 1 if suppression.standalone else suppression.line
            )
            if finding.line == covered or finding.line == suppression.line:
                return suppression
        return None

    # -- finding construction --------------------------------------------------
    def finding(self, rule: "Rule", node: ast.AST, message: str) -> Finding:
        return Finding(
            code=rule.code,
            message=message,
            path=self.relpath,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0),
            symbol=self.qualname(node),
        )


class Project:
    """All analyzed modules plus cross-file symbol resolution."""

    def __init__(
        self,
        root: Path,
        modules: Sequence[ModuleContext],
        manifest: InvariantManifest,
    ) -> None:
        self.root = root
        self.modules = list(modules)
        self.manifest = manifest
        self._by_relpath = {module.relpath: module for module in self.modules}
        self._symbol_cache: dict[str, frozenset[str] | None] = {}
        self._graph: object | None = None

    def module(self, relpath: str) -> ModuleContext | None:
        return self._by_relpath.get(relpath)

    def graph(self) -> "ProjectGraph":
        """The project's call graph, built lazily and shared across rules."""
        from repro.analysis.graph import ProjectGraph

        if self._graph is None:
            self._graph = ProjectGraph.build(self)
        if not isinstance(self._graph, ProjectGraph):
            raise AnalysisError("Project.graph cache holds a non-graph value")
        return self._graph

    def symbols_in(self, relpath: str) -> frozenset[str] | None:
        """Top-level defined names of ``relpath`` (``None`` if unreadable).

        Includes nested qualified names (``Class.method``, ``Class.attr`` for
        class-level assignments, ``outer.inner`` for nested functions), so
        manifest references can point at any declared symbol.  Files outside
        the analyzed path set (e.g. test modules referenced as parity
        fallbacks while only ``src`` is being linted) are parsed on demand.
        """
        cached = self._symbol_cache.get(relpath)
        if cached is not None or relpath in self._symbol_cache:
            return cached
        module = self._by_relpath.get(relpath)
        tree: ast.AST | None
        if module is not None:
            tree = module.tree
        else:
            candidate = self.root / relpath
            try:
                tree = ast.parse(candidate.read_text(), filename=str(candidate))
            except (OSError, SyntaxError):
                tree = None
        symbols = None if tree is None else frozenset(_collect_symbols(tree))
        self._symbol_cache[relpath] = symbols
        return symbols

    def resolves(self, reference: str) -> bool:
        """Whether a ``path.py::qualified.name`` manifest reference exists."""
        path, _, symbol = reference.partition("::")
        symbols = self.symbols_in(path)
        if symbols is None:
            return False
        return True if not symbol else symbol in symbols


def _collect_symbols(tree: ast.AST, scope: str = "") -> Iterator[str]:
    for node in ast.iter_child_nodes(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            name = f"{scope}.{node.name}" if scope else node.name
            yield name
            yield from _collect_symbols(node, scope=name)
        elif isinstance(node, ast.Assign) and scope:
            for target in node.targets:
                if isinstance(target, ast.Name):
                    yield f"{scope}.{target.id}"
        elif isinstance(node, ast.AnnAssign) and scope:
            if isinstance(node.target, ast.Name):
                yield f"{scope}.{node.target.id}"


class Rule:
    """Base class: one invariant, one ``REPnnn`` code.

    Subclasses set the class attributes and implement :meth:`check_module`
    (per-file findings) and/or :meth:`finalize` (cross-file findings, called
    once after every module was visited).  ``scope_prefixes`` restricts the
    per-module check to root-relative path prefixes (``None`` = everywhere);
    rules with manifest-driven scoping leave it ``None`` and filter
    themselves.
    """

    code: str = "REP000"
    name: str = "unnamed"
    summary: str = ""
    explanation: str = ""
    scope_prefixes: tuple[str, ...] | None = None

    def applies_to(self, module: ModuleContext) -> bool:
        if self.scope_prefixes is None:
            return True
        return module.relpath.startswith(self.scope_prefixes)

    def check_module(
        self, module: ModuleContext, manifest: InvariantManifest
    ) -> Iterable[Finding]:
        return ()

    def finalize(self, project: Project) -> Iterable[Finding]:
        return ()


class SuppressionHygiene(Rule):
    """REP000: the linter's own meta-rule for malformed suppressions."""

    code = "REP000"
    name = "suppression-hygiene"
    summary = "suppression comments must name known codes and carry a reason"
    explanation = (
        "Every `# repro: allow[REPnnn]` comment must name an existing rule "
        "code and end with `-- <reason>` explaining why the finding is safe "
        "to ignore at this site.  A suppression without a reason (or with a "
        "malformed code) is itself a finding: silent exemptions are exactly "
        "the review-only convention this linter exists to replace.  REP000 "
        "findings cannot be suppressed — fix the comment instead."
    )

    def check_module(
        self, module: ModuleContext, manifest: InvariantManifest
    ) -> Iterable[Finding]:
        return list(module.bad_suppressions)


_REGISTRY: dict[str, type[Rule]] = {}


def register(rule_class: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the global registry (keyed by code)."""
    existing = _REGISTRY.get(rule_class.code)
    if existing is not None and existing is not rule_class:
        raise AnalysisError(
            f"duplicate rule code {rule_class.code!r}: "
            f"{existing.__name__} and {rule_class.__name__}"
        )
    _REGISTRY[rule_class.code] = rule_class
    return rule_class


register(SuppressionHygiene)


def all_rules() -> list[Rule]:
    """Fresh instances of every registered rule, sorted by code."""
    import repro.analysis.rules  # noqa: F401  (registers the REP0xx rules)

    return [_REGISTRY[code]() for code in sorted(_REGISTRY)]


def rule_by_code(code: str) -> Rule:
    import repro.analysis.rules  # noqa: F401

    normalized = code.upper()
    rule_class = _REGISTRY.get(normalized)
    if rule_class is None:
        raise AnalysisError(
            f"unknown rule code {code!r}; known: {', '.join(sorted(_REGISTRY))}"
        )
    return rule_class()


@dataclass
class AnalysisReport:
    """The outcome of one analyzer run over a path set."""

    findings: list[Finding] = field(default_factory=list)
    analyzed_files: int = 0

    @property
    def new_findings(self) -> list[Finding]:
        return [finding for finding in self.findings if finding.is_new]

    @property
    def suppressed_findings(self) -> list[Finding]:
        return [finding for finding in self.findings if finding.suppressed]

    @property
    def baselined_findings(self) -> list[Finding]:
        return [finding for finding in self.findings if finding.baselined]

    @property
    def exit_code(self) -> int:
        return 1 if self.new_findings else 0


def iter_python_files(root: Path, paths: Sequence[str]) -> Iterator[Path]:
    """Yield the ``.py`` files under each path (sorted, ``__pycache__`` skipped)."""
    seen: set[Path] = set()
    for raw in paths:
        target = (root / raw).resolve() if not Path(raw).is_absolute() else Path(raw)
        if not target.exists():
            raise AnalysisError(f"no such path: {raw}")
        if target.is_file():
            candidates: Iterable[Path] = [target] if target.suffix == ".py" else []
        else:
            candidates = sorted(target.rglob("*.py"))
        for candidate in candidates:
            if "__pycache__" in candidate.parts or candidate in seen:
                continue
            seen.add(candidate)
            yield candidate


def analyze_paths(
    paths: Sequence[str],
    root: Path | str | None = None,
    manifest: InvariantManifest | None = None,
    rules: Sequence[Rule] | None = None,
    select: Sequence[str] | None = None,
    on_module: Callable[[ModuleContext], None] | None = None,
) -> AnalysisReport:
    """Run the rule set over every Python file under ``paths``.

    Findings come back sorted by location with suppressions already applied;
    baseline matching is the caller's concern (see
    :mod:`repro.analysis.baseline`), so the CLI can report baselined findings
    distinctly from suppressed ones.
    """
    resolved_root = Path(root).resolve() if root is not None else Path.cwd()
    active_manifest = manifest if manifest is not None else InvariantManifest.load()
    active_rules = list(rules) if rules is not None else all_rules()
    if select:
        wanted = {code.upper() for code in select}
        unknown = wanted - {rule.code for rule in active_rules}
        if unknown:
            raise AnalysisError(f"--select names unknown rule(s): {sorted(unknown)}")
        # REP000 (suppression hygiene) always runs: a malformed suppression
        # must surface no matter which rules were selected.
        active_rules = [
            rule
            for rule in active_rules
            if rule.code in wanted or rule.code == "REP000"
        ]

    modules: list[ModuleContext] = []
    findings: list[Finding] = []
    for path in iter_python_files(resolved_root, paths):
        try:
            source = path.read_text()
        except (OSError, UnicodeDecodeError) as error:
            raise AnalysisError(f"cannot read {path}: {error}") from error
        try:
            module = ModuleContext(resolved_root, path, source)
        except SyntaxError as error:
            findings.append(
                Finding(
                    code="REP000",
                    message=f"file does not parse: {error.msg}",
                    path=path.relative_to(resolved_root).as_posix(),
                    line=error.lineno or 1,
                    column=error.offset or 0,
                )
            )
            continue
        modules.append(module)
        if on_module is not None:
            on_module(module)
        for rule in active_rules:
            if rule.applies_to(module):
                findings.extend(rule.check_module(module, active_manifest))

    project = Project(resolved_root, modules, active_manifest)
    for rule in active_rules:
        findings.extend(rule.finalize(project))

    resolved: list[Finding] = []
    for finding in findings:
        module = project.module(finding.path)
        suppression = (
            module.suppression_for(finding)
            if module is not None and finding.code != "REP000"
            else None
        )
        if suppression is not None:
            finding = replace(
                finding, suppressed=True, suppression_reason=suppression.reason
            )
        resolved.append(finding)
    resolved.sort(key=lambda f: (f.path, f.line, f.column, f.code, f.message))
    return AnalysisReport(findings=resolved, analyzed_files=len(modules))
