"""Information-loss metrics for relational (single-valued) attributes.

The measures follow the definitions used by the algorithms SECRETA
integrates:

* **NCP / GCP** (Normalized / Global Certainty Penalty, Xu et al. 2006) —
  how much of an attribute's domain a generalized value spans, averaged over
  cells and records.  0 means no generalization, 1 means every value was
  generalized to the root.
* **Discernibility Metric** (Bayardo & Agrawal) — the sum of squared
  equivalence-class sizes; penalises large, indistinct groups.
* **Average equivalence class size** ``C_avg`` (LeFevre et al.) — how much
  larger the average class is than the minimum required size ``k``.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.datasets.dataset import Dataset
from repro.exceptions import DatasetError
from repro.hierarchy.hierarchy import Hierarchy
from repro.index import LabelInterpreter, evict_when_full, interpreter_for
from repro.metrics.interpretation import SUPPRESSED

#: Guard for the vectorized scoring path: a per-attribute NCP lookup table
#: holds one entry per *distinct* anonymized label, which is tiny for every
#: real anonymization output; past this bound (an adversarial column where
#: nearly every cell is a distinct unhashed label) the metrics fall back to
#: the exact per-record loop, mirroring the PR 2 charge-matrix guards.
_MAX_NCP_TABLE_ENTRIES = 1_000_000


def quasi_identifier_attributes(dataset: Dataset) -> list[str]:
    """Names of the relational quasi-identifier attributes of ``dataset``.

    The shared default for every relational metric (and for the algorithms'
    attribute selection): score exactly the single-valued columns that
    participate in the privacy model.
    """
    return [
        attribute.name
        for attribute in dataset.schema.relational
        if attribute.quasi_identifier
    ]


def categorical_value_ncp(
    label: str,
    hierarchy: Hierarchy | None,
    domain_size: int,
    interpreter: LabelInterpreter | None = None,
) -> float:
    """NCP of one categorical cell: ``(|leaves(label)| - 1) / (|domain| - 1)``."""
    if domain_size <= 1:
        return 0.0
    if str(label) == SUPPRESSED:
        return 1.0
    if interpreter is None:
        interpreter = interpreter_for(hierarchy)
    leaves = interpreter.leaves(label)
    if not leaves:
        # Only the root "*" resolves to nothing without a hierarchy; it stands
        # for the whole domain and must be charged fully, not 0.
        return 1.0
    return max(0, len(leaves) - 1) / (domain_size - 1)


def numeric_value_ncp(
    label,
    hierarchy: Hierarchy | None,
    domain_low: float,
    domain_high: float,
    interpreter: LabelInterpreter | None = None,
) -> float:
    """NCP of one numeric cell: the width of its range over the domain width."""
    if domain_high <= domain_low:
        return 0.0
    if str(label) == SUPPRESSED:
        return 1.0
    if isinstance(label, (int, float)):
        return 0.0
    if interpreter is None:
        interpreter = interpreter_for(hierarchy)
    span = interpreter.span(label)
    if span is None:
        # A label we cannot interpret numerically; treat as fully generalized.
        return 1.0
    low, high = span
    return max(0.0, min(1.0, (high - low) / (domain_high - domain_low)))


class RelationalLossContext:
    """Pre-computed domain information needed to score anonymized datasets.

    The context is built from the *original* dataset so that domain sizes and
    ranges reflect the true data, then reused to score any number of
    anonymized versions (exactly how SECRETA's varying-parameter execution
    scores a whole sweep).
    """

    def __init__(
        self,
        original: Dataset,
        attributes: Sequence[str] | None = None,
        hierarchies: Mapping[str, Hierarchy] | None = None,
    ):
        self.hierarchies = dict(hierarchies or {})
        if attributes is None:
            attributes = quasi_identifier_attributes(original)
        self.attributes = list(attributes)
        self.numeric_attributes: set[str] = set()
        self.domain_sizes: dict[str, int] = {}
        self.domain_ranges: dict[str, tuple[float, float]] = {}
        for name in self.attributes:
            attribute = original.schema[name]
            domain = original.domain(name)
            if not domain:
                raise DatasetError(f"attribute {name!r} has an empty domain")
            if attribute.is_numeric:
                self.numeric_attributes.add(name)
                self.domain_ranges[name] = (float(min(domain)), float(max(domain)))
            self.domain_sizes[name] = len(domain)
        #: One shared label interpreter per scored attribute, plus a per-cell
        #: NCP memo: anonymized columns contain few distinct labels, so the
        #: per-record work collapses to a dictionary lookup.
        self._interpreters: dict[str, LabelInterpreter] = {
            name: interpreter_for(self.hierarchies.get(name)) for name in self.attributes
        }
        self._cell_ncp_cache: dict[tuple[str, object], float] = {}

    def cell_ncp(self, attribute: str, label) -> float:
        """NCP of a single anonymized cell (memoized per distinct label).

        Raw numeric cells are not cached: they already score instantly and
        high-cardinality columns would pay memory for no speedup.
        """
        hierarchy = self.hierarchies.get(attribute)
        interpreter = self._interpreters.get(attribute)
        numeric = attribute in self.numeric_attributes
        if numeric and isinstance(label, (int, float)):
            low, high = self.domain_ranges[attribute]
            return numeric_value_ncp(label, hierarchy, low, high, interpreter)
        key = (attribute, label)
        cached = self._cell_ncp_cache.get(key)
        if cached is None:
            if numeric:
                low, high = self.domain_ranges[attribute]
                cached = numeric_value_ncp(label, hierarchy, low, high, interpreter)
            else:
                cached = categorical_value_ncp(
                    label, hierarchy, self.domain_sizes[attribute], interpreter
                )
            evict_when_full(self._cell_ncp_cache)
            self._cell_ncp_cache[key] = cached
        return cached

    def record_ncp(self, record) -> float:
        """Average NCP of one anonymized record over the scored attributes."""
        if not self.attributes:
            return 0.0
        return sum(
            self.cell_ncp(attribute, record[attribute]) for attribute in self.attributes
        ) / len(self.attributes)

    # -- vectorized dataset scoring ------------------------------------------------
    def attribute_ncp_values(self, anonymized: Dataset, attribute: str) -> np.ndarray | None:
        """Per-record NCP of one attribute as a ``float64`` array.

        Scores every *distinct* label once through :meth:`cell_ncp` into a
        lookup table over the anonymized column's value codes, then gathers
        the table per record.  Returns ``None`` when the distinct-label guard
        trips (the caller takes the exact per-record path).
        """
        column = anonymized.columnar(attribute)
        if len(column.values) > _MAX_NCP_TABLE_ENTRIES:
            return None
        table = np.fromiter(
            (self.cell_ncp(attribute, value) for value in column.values),
            dtype=np.float64,
            count=len(column.values),
        )
        return column.take(table) if len(column.values) else np.zeros(len(anonymized))

    def dataset_ncp_values(self, anonymized: Dataset) -> np.ndarray:
        """Per-record NCP (the mean over the scored attributes) for all records."""
        if not self.attributes:
            return np.zeros(len(anonymized))
        totals = np.zeros(len(anonymized))
        for attribute in self.attributes:
            values = self.attribute_ncp_values(anonymized, attribute)
            if values is None:
                return np.fromiter(
                    (self.record_ncp(record) for record in anonymized),
                    dtype=np.float64,
                    count=len(anonymized),
                )
            totals += values
        return totals / len(self.attributes)


def global_certainty_penalty(
    original: Dataset,
    anonymized: Dataset,
    attributes: Sequence[str] | None = None,
    hierarchies: Mapping[str, Hierarchy] | None = None,
    context: RelationalLossContext | None = None,
) -> float:
    """GCP: the average record NCP of the anonymized dataset (0 = intact).

    Pass a pre-built ``context`` to reuse its domain information and NCP memo
    when scoring many anonymized versions of the same original dataset.
    """
    if len(anonymized) == 0:
        return 0.0
    if context is None:
        context = RelationalLossContext(original, attributes, hierarchies)
    return float(context.dataset_ncp_values(anonymized).sum()) / len(anonymized)


def ncp_per_attribute(
    original: Dataset,
    anonymized: Dataset,
    attributes: Sequence[str] | None = None,
    hierarchies: Mapping[str, Hierarchy] | None = None,
) -> dict[str, float]:
    """Average NCP of each scored attribute (diagnostic view used in plots)."""
    context = RelationalLossContext(original, attributes, hierarchies)
    if len(anonymized) == 0:
        return {attribute: 0.0 for attribute in context.attributes}
    result = {}
    for attribute in context.attributes:
        values = context.attribute_ncp_values(anonymized, attribute)
        if values is None:
            total = sum(
                context.cell_ncp(attribute, record[attribute]) for record in anonymized
            )
        else:
            total = float(values.sum())
        result[attribute] = total / len(anonymized)
    return result


def equivalence_class_sizes(
    anonymized: Dataset, attributes: Sequence[str]
) -> np.ndarray:
    """Sizes of the equivalence classes induced by ``attributes`` (``int64``).

    Grouping runs over the columnar code matrix (one ``np.unique`` pass over
    ``(records, attributes)`` ``int32`` codes) instead of building a
    per-record tuple dictionary; codes share the dictionary-key equality of
    ``Dataset.group_by``, so the class structure is identical.
    """
    if len(anonymized) == 0:
        return np.zeros(0, dtype=np.int64)
    if not attributes:
        return np.array([len(anonymized)], dtype=np.int64)
    if any(anonymized.schema[attribute].is_transaction for attribute in attributes):
        # Set-valued cells have no code column; group the classic way.
        groups = anonymized.group_by(list(attributes))
        return np.fromiter(
            (len(indices) for indices in groups.values()),
            dtype=np.int64,
            count=len(groups),
        )
    matrix = np.stack(
        [anonymized.columnar(attribute).codes for attribute in attributes], axis=1
    )
    _, counts = np.unique(matrix, axis=0, return_counts=True)
    return counts.astype(np.int64)


def discernibility_metric(
    anonymized: Dataset, attributes: Sequence[str] | None = None
) -> int:
    """Discernibility: sum of squared equivalence-class sizes."""
    if attributes is None:
        attributes = quasi_identifier_attributes(anonymized)
    sizes = equivalence_class_sizes(anonymized, list(attributes))
    return int((sizes * sizes).sum())


def average_class_size(
    anonymized: Dataset, k: int, attributes: Sequence[str] | None = None
) -> float:
    """``C_avg``: (records / classes) / k.  1.0 is the ideal value."""
    if k < 1:
        raise DatasetError("k must be at least 1")
    if attributes is None:
        attributes = quasi_identifier_attributes(anonymized)
    sizes = equivalence_class_sizes(anonymized, list(attributes))
    if sizes.size == 0:
        return 0.0
    return (len(anonymized) / sizes.size) / k
