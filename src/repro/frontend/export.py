"""The Data Export Module.

SECRETA "allows exporting datasets, hierarchies, policies, and query
workloads, in CSV format, and graphs, in PDF, JPG, BMP or PNG format".  The
headless equivalent writes datasets/hierarchies/policies/workloads in their
CSV / text formats and exports figures both as plain-text renderings and as
the CSV/JSON series that back them (no binary image formats are produced in
this offline reproduction — the numbers are the artefact of record).
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Any, Mapping

from repro.datasets.csv_io import save_csv
from repro.datasets.dataset import Dataset
from repro.engine.results import ComparisonReport, EvaluationReport, Series, SweepResult
from repro.exceptions import ExportError
from repro.frontend.plotting import Figure, comparison_figure, phase_runtime_figure
from repro.hierarchy.hierarchy import Hierarchy
from repro.hierarchy.io import save_hierarchies
from repro.policies.io import save_privacy_policy, save_utility_policy
from repro.policies.privacy import PrivacyPolicy
from repro.policies.utility import UtilityPolicy
from repro.queries.workload import QueryWorkload


def _ensure_directory(directory: str | Path) -> Path:
    directory = Path(directory)
    try:
        directory.mkdir(parents=True, exist_ok=True)
    except OSError as error:
        raise ExportError(f"cannot create export directory {directory}: {error}") from error
    return directory


def export_series_csv(series: Series, path: str | Path) -> Path:
    """Write one series as a two-column CSV file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow([series.x_label, series.y_label])
        for x_value, y_value in series.rows():
            writer.writerow([x_value, y_value])
    return path


def export_figure(figure: Figure, directory: str | Path, stem: str) -> dict[str, Path]:
    """Write a figure as text rendering, JSON series and CSV table."""
    directory = _ensure_directory(directory)
    text_path = directory / f"{stem}.txt"
    json_path = directory / f"{stem}.json"
    csv_path = directory / f"{stem}.csv"
    text_path.write_text(figure.to_text(), encoding="utf-8")
    json_path.write_text(json.dumps(figure.as_dict(), indent=2), encoding="utf-8")
    rows = figure.to_rows()
    with csv_path.open("w", encoding="utf-8", newline="") as handle:
        if rows:
            writer = csv.DictWriter(handle, fieldnames=list(rows[0]))
            writer.writeheader()
            writer.writerows(rows)
    return {"text": text_path, "json": json_path, "csv": csv_path}


def export_json(data: Mapping[str, Any] | list, path: str | Path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(data, indent=2, default=str), encoding="utf-8")
    return path


class DataExportModule:
    """Exports every artefact of a SECRETA session into one directory tree."""

    def __init__(self, directory: str | Path):
        self.directory = _ensure_directory(directory)

    # -- inputs ------------------------------------------------------------------
    def export_dataset(self, dataset: Dataset, name: str | None = None) -> Path:
        return save_csv(dataset, self.directory / f"{name or dataset.name}.csv")

    def export_hierarchies(self, hierarchies: Mapping[str, Hierarchy]) -> dict[str, Path]:
        return save_hierarchies(hierarchies, self.directory / "hierarchies")

    def export_policies(
        self,
        privacy_policy: PrivacyPolicy | None = None,
        utility_policy: UtilityPolicy | None = None,
    ) -> dict[str, Path]:
        written: dict[str, Path] = {}
        if privacy_policy is not None:
            written["privacy"] = save_privacy_policy(
                privacy_policy, self.directory / "privacy_policy.txt"
            )
        if utility_policy is not None:
            written["utility"] = save_utility_policy(
                utility_policy, self.directory / "utility_policy.txt"
            )
        return written

    def export_workload(self, workload: QueryWorkload) -> Path:
        return workload.save(self.directory / "workload.json")

    # -- results ------------------------------------------------------------------
    def export_evaluation(self, report: EvaluationReport, stem: str = "evaluation") -> dict[str, Path]:
        """Write the anonymized dataset, the summary and the per-phase figure."""
        written: dict[str, Path] = {}
        written["anonymized"] = save_csv(
            report.anonymized, self.directory / f"{stem}_anonymized.csv"
        )
        written["summary"] = export_json(
            {
                "configuration": report.configuration,
                "are": report.are,
                "utility": report.utility,
                "privacy": report.privacy,
                "runtime_seconds": report.runtime_seconds,
                "phase_seconds": report.phase_seconds,
                "statistics": {
                    key: value
                    for key, value in report.result.statistics.items()
                    if key != "cluster_assignment"
                },
            },
            self.directory / f"{stem}_summary.json",
        )
        figure = phase_runtime_figure(report.phase_seconds)
        written.update(
            {
                f"phases_{kind}": path
                for kind, path in export_figure(figure, self.directory, f"{stem}_phases").items()
            }
        )
        return written

    def export_sweep(self, sweep: SweepResult, stem: str = "sweep") -> dict[str, Path]:
        written: dict[str, Path] = {}
        written["summary"] = export_json(sweep.as_dict(), self.directory / f"{stem}.json")
        for indicator, series in sweep.series.items():
            written[indicator] = export_series_csv(
                series, self.directory / f"{stem}_{indicator}.csv"
            )
        return written

    def export_comparison(
        self, report: ComparisonReport, stem: str = "comparison"
    ) -> dict[str, Path]:
        written: dict[str, Path] = {}
        written["summary"] = export_json(report.as_dict(), self.directory / f"{stem}.json")
        for indicator in report.indicators():
            figure = comparison_figure(report, indicator)
            paths = export_figure(figure, self.directory, f"{stem}_{indicator}")
            written.update({f"{indicator}_{kind}": path for kind, path in paths.items()})
        return written
