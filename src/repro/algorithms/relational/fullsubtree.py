"""Full-subtree bottom-up generalization.

This is the fourth relational algorithm SECRETA lists ("Full subtree
bottom-up"): a greedy, Datafly-style global recoding scheme.  Starting from
the original data (every attribute at level 0), the algorithm repeatedly
generalizes one attribute by one full hierarchy level — replacing every value
with its parent subtree's label — choosing at each step the attribute whose
promotion yields the largest smallest-class-size gain (ties broken by the
cheapest information loss), until the table is k-anonymous.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.algorithms.base import (
    AnonymizationResult,
    Anonymizer,
    PhaseTimer,
    relational_quasi_identifiers,
    require_hierarchies,
    validate_k,
)
from repro.algorithms.relational._fulldomain import FullDomainIndex
from repro.datasets.dataset import Dataset
from repro.exceptions import AlgorithmError
from repro.hierarchy.hierarchy import Hierarchy
from repro.hierarchy.lattice import GeneralizationLattice
from repro.metrics.relational import global_certainty_penalty


class FullSubtreeBottomUp(Anonymizer):
    """Greedy bottom-up full-domain generalization until k-anonymity holds."""

    name = "full-subtree"
    data_kind = "relational"

    def __init__(
        self,
        k: int,
        hierarchies: Mapping[str, Hierarchy],
        attributes: Sequence[str] | None = None,
    ):
        self.k = int(k)
        self.hierarchies = dict(hierarchies)
        self.attributes = list(attributes) if attributes is not None else None

    def parameters(self) -> dict:
        return {"k": self.k, "attributes": self.attributes}

    def anonymize(self, dataset: Dataset) -> AnonymizationResult:
        attributes = self.attributes or relational_quasi_identifiers(dataset)
        if not attributes:
            raise AlgorithmError(
                "FullSubtreeBottomUp: the dataset has no relational quasi-identifiers"
            )
        require_hierarchies(attributes, self.hierarchies, "FullSubtreeBottomUp")
        validate_k(self.k, len(dataset), "FullSubtreeBottomUp")

        timer = PhaseTimer()
        lattice = GeneralizationLattice(self.hierarchies, attributes)
        with timer.phase("index"):
            index = FullDomainIndex(dataset, lattice)

        node = list(lattice.bottom)
        steps = 0
        with timer.phase("bottom-up search"):
            while not index.is_k_anonymous(tuple(node), self.k):
                best_choice: tuple[int, float, int] | None = None  # (-min_size, loss, position)
                for position, attribute in enumerate(attributes):
                    if node[position] >= lattice.max_levels[position]:
                        continue
                    candidate = list(node)
                    candidate[position] += 1
                    candidate_tuple = tuple(candidate)
                    min_size = index.min_class_size(candidate_tuple)
                    loss = index.loss_proxy(candidate_tuple)
                    choice = (-min_size, loss, position)
                    if best_choice is None or choice < best_choice:
                        best_choice = choice
                if best_choice is None:
                    raise AlgorithmError(
                        "FullSubtreeBottomUp: reached the top of every hierarchy "
                        f"without satisfying {self.k}-anonymity"
                    )
                node[best_choice[2]] += 1
                steps += 1

        final = tuple(node)
        with timer.phase("apply"):
            anonymized = index.apply(dataset, final)
            anonymized.name = f"{dataset.name}[full-subtree]"
        gcp = global_certainty_penalty(
            dataset, anonymized, attributes=attributes, hierarchies=self.hierarchies
        )
        return AnonymizationResult(
            dataset=anonymized,
            algorithm=self.name,
            parameters=self.parameters(),
            runtime_seconds=timer.total,
            phase_seconds=timer.phases,
            statistics={
                "generalization_steps": steps,
                "chosen_levels": lattice.level_description(final),
                "gcp": gcp,
                "equivalence_classes": index.number_of_classes(final),
                "min_class_size": index.min_class_size(final),
            },
        )
