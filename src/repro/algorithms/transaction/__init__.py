"""Transaction (set-valued attribute) anonymization algorithms."""

from __future__ import annotations

from repro.algorithms.transaction.apriori import AprioriAnonymizer
from repro.algorithms.transaction.coat import Coat
from repro.algorithms.transaction.lra import LraAnonymizer
from repro.algorithms.transaction.pcta import Pcta
from repro.algorithms.transaction.rho_uncertainty import RhoUncertainty
from repro.algorithms.transaction.vpa import VpaAnonymizer

__all__ = [
    "AprioriAnonymizer",
    "Coat",
    "LraAnonymizer",
    "Pcta",
    "RhoUncertainty",
    "VpaAnonymizer",
]
