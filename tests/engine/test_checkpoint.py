"""Unit tests for the durable checkpoint store.

Layered like the module itself: the CRC32C kernel against published test
vectors, the frame codec against every damage mode it claims to detect, the
atomic write helper, the store's hit/miss/corrupt protocol and format-version
rebuild, the stable digest's canonicalisation guarantees, and finally the
``run_many`` integration (hits served, misses computed-and-stored, corrupt
cells recomputed with a structured warning).
"""

from __future__ import annotations

import os
import pickle
import struct
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.datasets import Attribute, Dataset, Schema
from repro.engine import run_many
from repro.engine.checkpoint import (
    FORMAT_VERSION,
    CheckpointStore,
    atomic_write_bytes,
    configuration_keys,
    crc32c,
    decode_frame,
    encode_frame,
    stable_digest,
    sweep_point_keys,
    task_key,
)
from repro.engine.config import transaction_config
from repro.engine.experiment import ParameterSweep
from repro.engine.resilience import ExecutionPolicy, RunReport
from repro.engine.resources import ExperimentResources
from repro.exceptions import CheckpointError
from repro.hierarchy.builders import build_numeric_hierarchy
from repro.policies.privacy import PrivacyPolicy
from repro.policies.utility import UtilityPolicy


def make_dataset(rows=None, name="ckpt-test") -> Dataset:
    schema = Schema(
        [
            Attribute.numeric("Age"),
            Attribute.categorical("City"),
            Attribute.transaction("Items"),
        ]
    )
    rows = rows if rows is not None else [
        {"Age": 30 + n, "City": f"c{n % 3}", "Items": {f"i{n % 4}", f"i{(n * 3) % 4}"}}
        for n in range(12)
    ]
    return Dataset(schema, rows, name=name)


# ---------------------------------------------------------------------------
# CRC32C


class TestCrc32c:
    def test_published_check_vector(self):
        # The canonical CRC32C check value (RFC 3720 appendix / crc catalogs).
        assert crc32c(b"123456789") == 0xE3069283

    def test_empty_input(self):
        assert crc32c(b"") == 0

    def test_all_zero_block(self):
        # iSCSI test vector: 32 zero bytes.
        assert crc32c(bytes(32)) == 0x8A9136AA

    def test_all_ones_block(self):
        assert crc32c(bytes([0xFF] * 32)) == 0x62A8AB43

    def test_incremental_matches_one_shot(self):
        data = bytes(range(256)) * 7
        running = 0
        for start in range(0, len(data), 100):
            running = crc32c(data[start : start + 100], running)
        assert running == crc32c(data)

    def test_single_bit_flip_changes_crc(self):
        data = os.urandom(1024)
        reference = crc32c(data)
        flipped = bytearray(data)
        flipped[517] ^= 0x40
        assert crc32c(bytes(flipped)) != reference


# ---------------------------------------------------------------------------
# Frame codec


class TestFrame:
    def test_roundtrip(self):
        payload = b"x" * 1000
        assert decode_frame(encode_frame(payload)) == payload

    def test_empty_payload_roundtrip(self):
        assert decode_frame(encode_frame(b"")) == b""

    def test_truncated_header(self):
        with pytest.raises(CheckpointError, match="truncated"):
            decode_frame(encode_frame(b"payload")[:7])

    def test_truncated_payload(self):
        blob = encode_frame(b"a complete payload")
        with pytest.raises(CheckpointError, match="length mismatch"):
            decode_frame(blob[:-5])

    def test_trailing_garbage(self):
        with pytest.raises(CheckpointError, match="length mismatch"):
            decode_frame(encode_frame(b"payload") + b"extra")

    def test_bad_magic(self):
        blob = bytearray(encode_frame(b"payload"))
        blob[0:4] = b"XXXX"
        with pytest.raises(CheckpointError, match="magic"):
            decode_frame(bytes(blob))

    def test_stale_format_version(self):
        header = struct.Struct("<4sIIQ")
        payload = b"payload"
        blob = header.pack(b"RPCK", FORMAT_VERSION + 1, crc32c(payload), len(payload))
        with pytest.raises(CheckpointError, match="version"):
            decode_frame(blob + payload)

    def test_bit_rot_fails_checksum(self):
        blob = bytearray(encode_frame(b"some payload bytes"))
        blob[-3] ^= 0x01
        with pytest.raises(CheckpointError, match="checksum"):
            decode_frame(bytes(blob))


# ---------------------------------------------------------------------------
# Atomic writes


class TestAtomicWrite:
    def test_writes_content(self, tmp_path):
        target = tmp_path / "sub" / "file.bin"
        atomic_write_bytes(target, b"abc")
        assert target.read_bytes() == b"abc"

    def test_replaces_existing(self, tmp_path):
        target = tmp_path / "file.bin"
        atomic_write_bytes(target, b"old")
        atomic_write_bytes(target, b"new")
        assert target.read_bytes() == b"new"

    def test_leaves_no_temp_files(self, tmp_path):
        target = tmp_path / "file.bin"
        atomic_write_bytes(target, b"data")
        assert [path.name for path in tmp_path.iterdir()] == ["file.bin"]


# ---------------------------------------------------------------------------
# The store


class TestCheckpointStore:
    def test_miss_then_hit(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        key = task_key("unit", 1)
        assert store.load(key).status == "miss"
        store.store(key, {"answer": 42})
        outcome = store.load(key)
        assert outcome.status == "hit"
        assert outcome.value == {"answer": 42}

    def test_malformed_key_rejected(self, tmp_path):
        store = CheckpointStore(tmp_path)
        with pytest.raises(CheckpointError, match="malformed"):
            store.load("../../etc/passwd")
        with pytest.raises(CheckpointError, match="malformed"):
            store.store("", 1)

    def test_truncated_cell_is_corrupt_not_fatal(self, tmp_path):
        store = CheckpointStore(tmp_path)
        key = task_key("unit", 2)
        path = store.store(key, list(range(100)))
        os.truncate(path, 9)
        outcome = store.load(key)
        assert outcome.status == "corrupt"
        assert key in outcome.detail

    def test_bit_rot_is_corrupt_not_fatal(self, tmp_path):
        store = CheckpointStore(tmp_path)
        key = task_key("unit", 3)
        path = store.store(key, list(range(100)))
        blob = bytearray(path.read_bytes())
        blob[-10] ^= 0xFF
        path.write_bytes(bytes(blob))
        assert store.load(key).status == "corrupt"

    def test_unpicklable_payload_in_cell_is_corrupt(self, tmp_path):
        store = CheckpointStore(tmp_path)
        key = task_key("unit", 4)
        path = store.store(key, "value")
        # A valid frame around garbage that is not a pickle.
        atomic_write_bytes(path, encode_frame(b"\x00not a pickle"))
        assert store.load(key).status == "corrupt"

    def test_unpicklable_value_raises_typed_error(self, tmp_path):
        store = CheckpointStore(tmp_path)
        with pytest.raises(CheckpointError, match="not picklable"):
            store.store(task_key("unit", 5), lambda: None)

    def test_format_mismatch_rebuilds_store(self, tmp_path):
        directory = tmp_path / "ckpt"
        store = CheckpointStore(directory)
        key = task_key("unit", 6)
        store.store(key, "kept?")
        # Simulate a store written by an older layout.
        (directory / "FORMAT").write_bytes(b"RPCK\x63\x00\x00\x00\n")
        fresh = CheckpointStore(directory)
        assert fresh.load(key).status == "miss"
        assert fresh.keys() == []
        # The header has been rewritten to the current format.
        assert (directory / "FORMAT").read_bytes().startswith(b"RPCK")

    def test_keys_lists_cells(self, tmp_path):
        store = CheckpointStore(tmp_path)
        keys = sorted(task_key("unit", n) for n in range(3))
        for key in keys:
            store.store(key, key)
        assert store.keys() == keys

    def test_store_is_picklable(self, tmp_path):
        store = CheckpointStore(tmp_path)
        key = task_key("unit", 7)
        store.store(key, 123)
        clone = pickle.loads(pickle.dumps(store))
        assert clone.load(key).value == 123
        assert clone.stores == 0  # the write counter does not travel


# ---------------------------------------------------------------------------
# Stable digests


class TestStableDigest:
    def test_type_tags_keep_lookalikes_apart(self):
        assert stable_digest(25) != stable_digest(25.0)
        assert stable_digest(25) != stable_digest("25")
        assert stable_digest(True) != stable_digest(1)
        assert stable_digest(False) != stable_digest(0)
        assert stable_digest(None) != stable_digest("")

    def test_signed_zero_floats_differ(self):
        assert stable_digest(0.0) != stable_digest(-0.0)

    def test_container_structure_matters(self):
        assert stable_digest([1, 2]) != stable_digest((1, 2))
        assert stable_digest([1, 2]) != stable_digest([2, 1])
        assert stable_digest({1, 2}) == stable_digest({2, 1})
        assert stable_digest(frozenset({"a", "b"})) == stable_digest(
            frozenset({"b", "a"})
        )

    def test_dict_order_is_canonical(self):
        assert stable_digest({"a": 1, "b": 2}) == stable_digest({"b": 2, "a": 1})
        assert stable_digest({"a": 1}) != stable_digest({"a": 2})

    def test_numpy_values(self):
        assert stable_digest(np.int64(7)) == stable_digest(7)
        array = np.arange(6, dtype=np.int32).reshape(2, 3)
        assert stable_digest(array) == stable_digest(array.copy())
        assert stable_digest(array) != stable_digest(array.T)

    def test_policies_and_dataclasses(self):
        policy_a = PrivacyPolicy([frozenset({"i1", "i2"})], k=5)
        policy_b = PrivacyPolicy([frozenset({"i2", "i1"})], k=5)
        assert stable_digest(policy_a) == stable_digest(policy_b)
        assert stable_digest(policy_a) != stable_digest(
            PrivacyPolicy([frozenset({"i1", "i2"})], k=6)
        )
        utility = UtilityPolicy([frozenset({"i1"})])
        assert stable_digest(utility) == stable_digest(UtilityPolicy([frozenset({"i1"})]))

    def test_hierarchy_digest_tracks_structure(self):
        small = build_numeric_hierarchy(range(16), fanout=2, attribute="Age")
        assert stable_digest(small) == stable_digest(
            build_numeric_hierarchy(range(16), fanout=2, attribute="Age")
        )
        assert stable_digest(small) != stable_digest(
            build_numeric_hierarchy(range(32), fanout=2, attribute="Age")
        )

    def test_unknown_type_raises(self):
        with pytest.raises(CheckpointError, match="stable digest"):
            stable_digest(object())

    def test_hash_seed_independence(self):
        """The digest of hash-randomised containers must not change with
        PYTHONHASHSEED — otherwise every interpreter restart would orphan
        every cell."""
        script = (
            "from repro.engine.checkpoint import stable_digest\n"
            "value = {frozenset({'alpha', 'beta', 'gamma'}): [1, 2.5, {'x', 'y'}],\n"
            "         frozenset({'delta'}): (None, True, 'z')}\n"
            "print(stable_digest(value))\n"
        )
        digests = set()
        for seed in ("0", "1", "4242"):
            env = dict(os.environ, PYTHONHASHSEED=seed)
            env["PYTHONPATH"] = os.pathsep.join(
                [str(Path(__file__).resolve().parents[2] / "src")]
                + ([env["PYTHONPATH"]] if "PYTHONPATH" in env else [])
            )
            result = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                env=env,
                check=True,
            )
            digests.add(result.stdout.strip())
        assert len(digests) == 1


# ---------------------------------------------------------------------------
# Key derivation


class TestKeys:
    def test_sweep_point_keys_one_per_value(self):
        dataset = make_dataset()
        sweep = ParameterSweep("k", (2, 3, 4))
        keys = sweep_point_keys(
            dataset, ExperimentResources(), False, "original",
            transaction_config("coat", k=2, m=2), sweep,
        )
        assert len(keys) == 3
        assert len(set(keys)) == 3

    def test_keys_change_with_inputs(self):
        dataset = make_dataset()
        sweep = ParameterSweep("k", (2,))
        config = transaction_config("coat", k=2, m=2)
        base = sweep_point_keys(
            dataset, ExperimentResources(), False, "original", config, sweep
        )
        # A different dataset, config, or flag changes the key.
        mutated = make_dataset()
        mutated.set_value(0, "Age", 99)
        assert sweep_point_keys(
            mutated, ExperimentResources(), False, "original", config, sweep
        ) != base
        assert sweep_point_keys(
            dataset, ExperimentResources(), True, "original", config, sweep
        ) != base
        assert sweep_point_keys(
            dataset, ExperimentResources(), False, "original",
            transaction_config("coat", k=2, m=3), sweep,
        ) != base

    def test_configuration_keys_cover_each_config(self):
        dataset = make_dataset()
        sweep = ParameterSweep("k", (2, 3))
        configs = [
            transaction_config("coat", k=2, m=2),
            transaction_config("pcta", k=2, m=2),
        ]
        keys = configuration_keys(
            dataset, ExperimentResources(), False, "original", configs, sweep
        )
        assert len(set(keys)) == 2


# ---------------------------------------------------------------------------
# run_many integration


def _double(task: int) -> int:
    return task * 2


class TestRunManyIntegration:
    def test_miss_compute_store_then_hit(self, tmp_path):
        store = CheckpointStore(tmp_path)
        keys = [task_key("t", n) for n in range(4)]
        report = RunReport()
        first = run_many(
            [0, 1, 2, 3], _double, checkpoint=store, checkpoint_keys=keys,
            report=report,
        )
        assert first == [0, 2, 4, 6]
        assert report.checkpoint_counts() == {"hit": 0, "miss": 4, "corrupt": 0}
        assert len(report.tasks) == 4

        second_report = RunReport()
        second = run_many(
            [0, 1, 2, 3], _double, checkpoint=store, checkpoint_keys=keys,
            report=second_report,
        )
        assert second == first
        assert second_report.checkpoint_counts() == {"hit": 4, "miss": 0, "corrupt": 0}
        assert all(
            task.final_backend == "checkpoint" for task in second_report.tasks
        )
        assert second_report.warnings == []

    def test_partial_resume(self, tmp_path):
        store = CheckpointStore(tmp_path)
        keys = [task_key("t", n) for n in range(4)]
        run_many([0, 1], _double, checkpoint=store, checkpoint_keys=keys[:2])
        report = RunReport()
        results = run_many(
            [0, 1, 2, 3], _double, checkpoint=store, checkpoint_keys=keys,
            report=report,
        )
        assert results == [0, 2, 4, 6]
        assert report.checkpoint_counts() == {"hit": 2, "miss": 2, "corrupt": 0}
        # Reports cover every task exactly once, in order.
        assert [task.index for task in report.tasks] == [0, 1, 2, 3]

    def test_corrupt_cell_recomputed_and_warned(self, tmp_path):
        store = CheckpointStore(tmp_path)
        keys = [task_key("t", n) for n in range(3)]
        run_many([0, 1, 2], _double, checkpoint=store, checkpoint_keys=keys)
        os.truncate(store.cell_path(keys[1]), 5)
        report = RunReport()
        results = run_many(
            [0, 1, 2], _double, checkpoint=store, checkpoint_keys=keys,
            report=report,
        )
        assert results == [0, 2, 4]
        assert report.checkpoint_counts() == {"hit": 2, "miss": 0, "corrupt": 1}
        assert len(report.warnings) == 1
        assert keys[1] in report.warnings[0]
        assert report.task(1).checkpoint == "corrupt"
        # The recompute repaired the cell durably.
        assert store.load(keys[1]).status == "hit"

    def test_validator_rejected_hit_is_recomputed(self, tmp_path):
        store = CheckpointStore(tmp_path)
        key = task_key("t", 0)
        store.store(key, -1)  # a stored value the validator rejects
        policy = ExecutionPolicy(validate_result=lambda value: value >= 0)
        report = RunReport()
        results = run_many(
            [5], _double, checkpoint=store, checkpoint_keys=[key],
            policy=policy, report=report,
        )
        assert results == [10]
        assert report.checkpoint_counts()["corrupt"] == 1
        assert any("validator" in warning for warning in report.warnings)
        assert store.load(key).value == 10

    def test_missing_keys_rejected(self, tmp_path):
        store = CheckpointStore(tmp_path)
        with pytest.raises(CheckpointError, match="one checkpoint key per task"):
            run_many([1, 2], _double, checkpoint=store, checkpoint_keys=None)
        with pytest.raises(CheckpointError, match="2 task"):
            run_many(
                [1, 2], _double, checkpoint=store,
                checkpoint_keys=[task_key("t", 0)],
            )

    def test_duplicate_keys_rejected(self, tmp_path):
        store = CheckpointStore(tmp_path)
        key = task_key("t", 0)
        with pytest.raises(CheckpointError, match="unique"):
            run_many([1, 2], _double, checkpoint=store, checkpoint_keys=[key, key])

    def test_no_report_no_policy_still_resumes(self, tmp_path):
        store = CheckpointStore(tmp_path)
        keys = [task_key("t", n) for n in range(2)]
        assert run_many([3, 4], _double, checkpoint=store, checkpoint_keys=keys) == [6, 8]
        assert run_many([3, 4], _double, checkpoint=store, checkpoint_keys=keys) == [6, 8]
