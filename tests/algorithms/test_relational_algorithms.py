"""Tests for the four relational anonymization algorithms.

Every algorithm must (a) produce a k-anonymous dataset over the relational
quasi-identifiers, (b) leave non-quasi-identifier and transaction attributes
untouched, and (c) report runtime and statistics.  Algorithm-specific
behaviour (lattice search, specialization, clustering) is tested separately.
"""

import pytest

from repro.algorithms import (
    ClusterAnonymizer,
    FullSubtreeBottomUp,
    Incognito,
    TopDownSpecialization,
)
from repro.datasets import generate_adult_like
from repro.exceptions import AlgorithmError, ConfigurationError
from repro.hierarchy import build_hierarchies_for_dataset
from repro.metrics import global_certainty_penalty, is_k_anonymous

QI = ["Age", "Education", "Marital", "Gender"]


@pytest.fixture(scope="module")
def adult():
    return generate_adult_like(n_records=200, seed=17)


@pytest.fixture(scope="module")
def hierarchies(adult):
    return build_hierarchies_for_dataset(adult, fanout=3, attributes=QI)


def make_algorithm(name, k, hierarchies):
    if name == "incognito":
        return Incognito(k, hierarchies, attributes=QI)
    if name == "top-down":
        return TopDownSpecialization(k, hierarchies, attributes=QI)
    if name == "full-subtree":
        return FullSubtreeBottomUp(k, hierarchies, attributes=QI)
    if name == "cluster":
        return ClusterAnonymizer(k, hierarchies, attributes=QI)
    raise ValueError(name)


ALL_NAMES = ["incognito", "top-down", "full-subtree", "cluster"]


class TestCommonContract:
    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_output_is_k_anonymous(self, name, adult, hierarchies):
        algorithm = make_algorithm(name, 5, hierarchies)
        result = algorithm.anonymize(adult)
        assert len(result.dataset) == len(adult)
        assert is_k_anonymous(result.dataset, 5, attributes=QI)

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_non_qi_attributes_untouched(self, name, adult, hierarchies):
        algorithm = make_algorithm(name, 5, hierarchies)
        result = algorithm.anonymize(adult)
        assert result.dataset.column("Disease") == adult.column("Disease")
        assert result.dataset.column("Workclass") == adult.column("Workclass")

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_result_reports_runtime_and_statistics(self, name, adult, hierarchies):
        algorithm = make_algorithm(name, 5, hierarchies)
        result = algorithm.anonymize(adult)
        assert result.runtime_seconds > 0
        assert result.phase_seconds
        assert result.statistics
        assert result.algorithm == algorithm.name

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_larger_k_never_reduces_information_loss(self, name, adult, hierarchies):
        small = make_algorithm(name, 2, hierarchies).anonymize(adult)
        large = make_algorithm(name, 25, hierarchies).anonymize(adult)
        gcp_small = global_certainty_penalty(adult, small.dataset, QI, hierarchies)
        gcp_large = global_certainty_penalty(adult, large.dataset, QI, hierarchies)
        assert gcp_large >= gcp_small - 1e-9

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_k_larger_than_dataset_rejected(self, name, adult, hierarchies):
        algorithm = make_algorithm(name, len(adult) + 1, hierarchies)
        with pytest.raises(ConfigurationError):
            algorithm.anonymize(adult)

    @pytest.mark.parametrize("name", ["incognito", "top-down", "full-subtree"])
    def test_missing_hierarchy_rejected(self, name, adult, hierarchies):
        partial = {"Age": hierarchies["Age"]}
        if name == "incognito":
            algorithm = Incognito(3, partial, attributes=QI)
        elif name == "top-down":
            algorithm = TopDownSpecialization(3, partial, attributes=QI)
        else:
            algorithm = FullSubtreeBottomUp(3, partial, attributes=QI)
        with pytest.raises(ConfigurationError):
            algorithm.anonymize(adult)


class TestIncognito:
    def test_reports_lattice_statistics(self, adult, hierarchies):
        result = Incognito(5, hierarchies, attributes=QI).anonymize(adult)
        stats = result.statistics
        assert stats["nodes_checked"] <= stats["lattice_size"]
        assert stats["minimal_solutions"] >= 1
        assert set(stats["chosen_levels"]) == set(QI)

    def test_full_domain_recoding_is_uniform_per_attribute(self, adult, hierarchies):
        result = Incognito(5, hierarchies, attributes=QI).anonymize(adult)
        # Full-domain recoding: all records with the same original value get
        # the same generalized value.
        original_to_published = {}
        for original, published in zip(adult, result.dataset):
            key = original["Education"]
            value = published["Education"]
            assert original_to_published.setdefault(key, value) == value

    def test_requires_quasi_identifiers(self, hierarchies):
        relational = generate_adult_like(n_records=20, seed=1)
        for name in ["Age", "Hours", "Workclass", "Education", "Marital", "Occupation", "Gender"]:
            relational.remove_attribute(name)
        with pytest.raises(AlgorithmError):
            Incognito(2, hierarchies).anonymize(relational)


class TestTopDown:
    def test_starts_anonymous_and_stays_anonymous(self, adult, hierarchies):
        result = TopDownSpecialization(10, hierarchies, attributes=QI).anonymize(adult)
        assert result.statistics["min_class_size"] >= 10

    def test_specializes_below_the_root(self, adult, hierarchies):
        result = TopDownSpecialization(5, hierarchies, attributes=QI).anonymize(adult)
        assert result.statistics["specializations"] > 0
        # At least one attribute should not be fully generalized.
        assert any(size > 1 for size in result.statistics["cut_sizes"].values())


class TestFullSubtree:
    def test_levels_are_within_hierarchy_heights(self, adult, hierarchies):
        result = FullSubtreeBottomUp(5, hierarchies, attributes=QI).anonymize(adult)
        for attribute, level in result.statistics["chosen_levels"].items():
            assert 0 <= level <= hierarchies[attribute].height

    def test_no_generalization_when_data_is_already_anonymous(self, hierarchies, adult):
        # Gender alone with k=2 is already satisfied by the raw data.
        algorithm = FullSubtreeBottomUp(2, hierarchies, attributes=["Gender"])
        result = algorithm.anonymize(adult)
        assert result.statistics["generalization_steps"] == 0
        assert result.dataset.column("Gender") == adult.column("Gender")


class TestCluster:
    def test_every_cluster_has_at_least_k_members(self, adult, hierarchies):
        algorithm = ClusterAnonymizer(7, hierarchies, attributes=QI)
        result = algorithm.anonymize(adult)
        assert result.statistics["min_cluster_size"] >= 7
        assert result.statistics["clusters"] == len(
            result.statistics["cluster_assignment"]
        )

    def test_cluster_assignment_partitions_the_records(self, adult, hierarchies):
        algorithm = ClusterAnonymizer(5, hierarchies, attributes=QI)
        result = algorithm.anonymize(adult)
        seen = sorted(
            index
            for cluster in result.statistics["cluster_assignment"]
            for index in cluster
        )
        assert seen == list(range(len(adult)))

    def test_local_recoding_beats_full_domain_on_utility(self, adult, hierarchies):
        cluster_result = ClusterAnonymizer(5, hierarchies, attributes=QI).anonymize(adult)
        incognito_result = Incognito(5, hierarchies, attributes=QI).anonymize(adult)
        gcp_cluster = global_certainty_penalty(
            adult, cluster_result.dataset, QI, hierarchies
        )
        gcp_incognito = global_certainty_penalty(
            adult, incognito_result.dataset, QI, hierarchies
        )
        assert gcp_cluster <= gcp_incognito + 1e-9

    def test_works_without_hierarchies(self, adult):
        result = ClusterAnonymizer(5, attributes=QI).anonymize(adult)
        assert is_k_anonymous(result.dataset, 5, attributes=QI)
