"""LRA: Local Recoding Anonymization for set-valued data (Terrovitis et al., VLDB J. 2011).

LRA trades some of the global-recoding simplicity of Apriori anonymization
for utility: the transactions are first partitioned into groups of similar
records, and each partition is k^m-anonymized *independently* with its own
generalization cut.  A popular item may therefore stay intact in one
partition while being generalized in another.

The union of independently k^m-anonymous partitions is itself k^m-anonymous:
for any combination of up to ``m`` items, each partition contributes either 0
or at least ``k`` candidate records, so the total is 0 or at least ``k``.
"""

from __future__ import annotations

from repro.algorithms.base import AnonymizationResult, Anonymizer, PhaseTimer
from repro.algorithms.transaction._itemcut import greedy_km_anonymize
from repro.datasets.dataset import Dataset
from repro.exceptions import AlgorithmError, ConfigurationError
from repro.hierarchy.builders import build_item_hierarchy
from repro.hierarchy.hierarchy import Hierarchy
from repro.metrics.transaction import utility_loss


class LraAnonymizer(Anonymizer):
    """k^m-anonymity through per-partition (local) full-subtree recoding."""

    name = "lra"
    data_kind = "transaction"

    def __init__(
        self,
        k: int,
        m: int = 2,
        hierarchy: Hierarchy | None = None,
        attribute: str | None = None,
        partition_size: int | None = None,
        hierarchy_fanout: int = 4,
    ):
        if k < 2:
            raise ConfigurationError("LraAnonymizer: k must be at least 2")
        if m < 1:
            raise ConfigurationError("LraAnonymizer: m must be at least 1")
        self.k = int(k)
        self.m = int(m)
        self.hierarchy = hierarchy
        self.attribute = attribute
        #: Target number of records per partition; defaults to ``max(8k, 100)``
        #: which keeps partitions large enough that item combinations retain
        #: measurable support without destroying the locality benefit.
        self.partition_size = partition_size
        self.hierarchy_fanout = hierarchy_fanout

    def parameters(self) -> dict:
        return {
            "k": self.k,
            "m": self.m,
            "attribute": self.attribute,
            "partition_size": self.partition_size,
        }

    def _partition(self, dataset: Dataset, attribute: str) -> list[list[int]]:
        """Group records into similarity-sorted partitions of bounded size."""
        size = self.partition_size or max(8 * self.k, 100)
        size = max(size, self.k)
        # Sort records by their sorted itemsets so that neighbouring records
        # share items (the "horizontal partitioning" of the paper).
        order = sorted(
            range(len(dataset)), key=lambda index: sorted(dataset[index][attribute])
        )
        partitions = [order[i : i + size] for i in range(0, len(order), size)]
        if len(partitions) > 1 and len(partitions[-1]) < self.k:
            tail = partitions.pop()
            partitions[-1].extend(tail)
        return partitions

    def anonymize(self, dataset: Dataset) -> AnonymizationResult:
        attribute = self.attribute or dataset.single_transaction_attribute()
        timer = PhaseTimer()
        universe = dataset.item_universe(attribute)
        if not universe:
            raise AlgorithmError("LraAnonymizer: the transaction attribute is empty")
        with timer.phase("hierarchy"):
            hierarchy = self.hierarchy or build_item_hierarchy(
                universe, fanout=self.hierarchy_fanout, attribute=attribute
            )

        with timer.phase("partitioning"):
            partitions = self._partition(dataset, attribute)

        anonymized = dataset.copy(name=f"{dataset.name}[lra]")
        generalization_steps = 0
        suppressed_partitions = 0
        with timer.phase("local recoding"):
            for partition in partitions:
                itemsets = [dataset[index][attribute] for index in partition]
                cut, statistics = greedy_km_anonymize(
                    itemsets, hierarchy, self.k, self.m, apriori_order=True
                )
                generalization_steps += statistics["generalization_steps"]
                if statistics["unresolvable_violations"]:
                    suppressed_partitions += 1
                    for index in partition:
                        anonymized.set_value(index, attribute, [])
                    continue
                for index in partition:
                    anonymized.set_value(
                        index,
                        attribute,
                        sorted(cut.generalize_itemset(dataset[index][attribute])),
                    )

        statistics = {
            "partitions": len(partitions),
            "partition_size_target": self.partition_size or max(8 * self.k, 100),
            "generalization_steps": generalization_steps,
            "suppressed_partitions": suppressed_partitions,
            "utility_loss": utility_loss(
                dataset, anonymized, attribute=attribute, hierarchy=hierarchy
            ),
        }
        return AnonymizationResult(
            dataset=anonymized,
            algorithm=self.name,
            parameters=self.parameters(),
            runtime_seconds=timer.total,
            phase_seconds=timer.phases,
            statistics=statistics,
        )
