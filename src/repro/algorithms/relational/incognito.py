"""Incognito: efficient full-domain k-anonymity (LeFevre, DeWitt, Ramakrishnan, SIGMOD 2005).

Incognito searches the lattice of full-domain generalization level vectors
bottom-up (breadth-first), checking k-anonymity of each candidate and using
the *generalization property* to prune: once a level vector is k-anonymous,
every vector that generalizes it is k-anonymous as well and need not be
checked.  Among the minimal k-anonymous vectors found, the one with the best
utility (lowest Global Certainty Penalty) is applied to the dataset.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.algorithms.base import (
    AnonymizationResult,
    Anonymizer,
    PhaseTimer,
    relational_quasi_identifiers,
    require_hierarchies,
    validate_k,
)
from repro.algorithms.relational._fulldomain import FullDomainIndex
from repro.datasets.dataset import Dataset
from repro.exceptions import AlgorithmError
from repro.hierarchy.hierarchy import Hierarchy
from repro.hierarchy.lattice import GeneralizationLattice, LevelVector
from repro.metrics.relational import global_certainty_penalty


class Incognito(Anonymizer):
    """Full-domain k-anonymity via bottom-up lattice search."""

    name = "incognito"
    data_kind = "relational"

    def __init__(
        self,
        k: int,
        hierarchies: Mapping[str, Hierarchy],
        attributes: Sequence[str] | None = None,
    ):
        self.k = int(k)
        self.hierarchies = dict(hierarchies)
        self.attributes = list(attributes) if attributes is not None else None

    def parameters(self) -> dict:
        return {"k": self.k, "attributes": self.attributes}

    def anonymize(self, dataset: Dataset) -> AnonymizationResult:
        attributes = self.attributes or relational_quasi_identifiers(dataset)
        if not attributes:
            raise AlgorithmError("Incognito: the dataset has no relational quasi-identifiers")
        require_hierarchies(attributes, self.hierarchies, "Incognito")
        validate_k(self.k, len(dataset), "Incognito")

        timer = PhaseTimer()
        lattice = GeneralizationLattice(self.hierarchies, attributes)

        with timer.phase("index"):
            index = FullDomainIndex(dataset, lattice)

        checked = 0
        minimal_nodes: list[LevelVector] = []
        known_anonymous: set[LevelVector] = set()
        with timer.phase("lattice search"):
            for level_nodes in lattice.iter_levels():
                for node in level_nodes:
                    if node in known_anonymous:
                        continue
                    checked += 1
                    if index.is_k_anonymous(node, self.k):
                        minimal_nodes.append(node)
                        # Generalization property: every ancestor is anonymous too.
                        for ancestor in lattice.ancestors(node):
                            known_anonymous.add(ancestor)
                        known_anonymous.add(node)
        if not minimal_nodes:
            raise AlgorithmError(
                f"Incognito: no full-domain generalization satisfies {self.k}-anonymity"
            )

        with timer.phase("selection"):
            best_node, best_dataset, best_gcp = self._select_best(
                dataset, index, minimal_nodes, attributes
            )

        result_dataset = best_dataset
        result_dataset.name = f"{dataset.name}[incognito]"
        return AnonymizationResult(
            dataset=result_dataset,
            algorithm=self.name,
            parameters=self.parameters(),
            runtime_seconds=timer.total,
            phase_seconds=timer.phases,
            statistics={
                "lattice_size": lattice.size(),
                "nodes_checked": checked,
                "minimal_solutions": len(minimal_nodes),
                "chosen_levels": lattice.level_description(best_node),
                "gcp": best_gcp,
                "equivalence_classes": index.number_of_classes(best_node),
            },
        )

    def _select_best(
        self,
        dataset: Dataset,
        index: FullDomainIndex,
        candidates: list[LevelVector],
        attributes: Sequence[str],
    ) -> tuple[LevelVector, Dataset, float]:
        """Pick the minimal k-anonymous node with the lowest GCP."""
        best: tuple[LevelVector, Dataset, float] | None = None
        # Cheap pre-ranking keeps the number of exact GCP evaluations small.
        ranked = sorted(candidates, key=index.loss_proxy)[:10]
        for node in ranked:
            candidate = index.apply(dataset, node)
            gcp = global_certainty_penalty(
                dataset, candidate, attributes=attributes, hierarchies=self.hierarchies
            )
            if best is None or gcp < best[2]:
                best = (node, candidate, gcp)
        if best is None:
            raise AlgorithmError(
                "incognito produced no k-anonymous candidate to rank; the "
                "minimal-solution set was empty"
            )
        return best
