"""Quickstart: anonymize an RT-dataset and inspect the results.

This walks the shortest path through the library: generate a dataset, run one
relational+transaction algorithm combination under a bounding method, and
print the utility, privacy and runtime indicators SECRETA's Evaluation screen
would show.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import Session, rt_config
from repro.frontend.plotting import phase_runtime_figure


def main() -> None:
    # 1. Load data.  The demo uses a "ready-to-use RT-dataset"; we generate a
    #    synthetic one with the same structure (census-like demographics plus
    #    a set-valued Items attribute).
    session = Session.generate_rt(n_records=400, n_items=30, seed=7)
    print("Dataset:", session.dataset)
    print()
    print(session.histogram_text("Education"))

    # 2. Pick a configuration: Cluster for the relational part, Apriori (k^m)
    #    for the transaction part, combined with the RTmerger bounding method.
    config = rt_config(
        "cluster", "apriori", bounding="rtmerger", k=10, m=2, delta=0.6,
        label="cluster+apriori/rtmerger",
    )

    # 3. Evaluate.  Hierarchies, policies and the query workload are generated
    #    automatically because we did not supply any.
    report = session.evaluate(config)

    # 4. Inspect the indicators.
    print(f"Configuration        : {report.configuration['label']}")
    print(f"ARE (query workload) : {report.are:.4f}")
    for name, value in sorted(report.utility.items()):
        print(f"Utility {name:<22}: {value:.4f}")
    for name, value in sorted(report.privacy.items(), key=lambda kv: kv[0]):
        print(f"Privacy {name:<22}: {value}")
    print(f"Runtime              : {report.runtime_seconds:.3f}s")
    print()
    print(phase_runtime_figure(report.phase_seconds).to_text())

    # 5. A peek at the anonymized records.
    print("First three anonymized records:")
    for record in report.anonymized.records[:3]:
        print("  ", record.as_dict())


if __name__ == "__main__":
    main()
