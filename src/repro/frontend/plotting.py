"""Text-based plotting: the headless counterpart of SECRETA's Plotting Module.

The GUI renders QWT charts; this library produces the same information as

* structured :class:`~repro.engine.results.Series` objects (the numbers behind
  every plot, exportable to CSV/JSON), and
* ASCII renderings for terminals, log files and the examples in this
  repository.

Supported chart types mirror the demo: histograms of attribute values, bar
charts of per-phase runtimes, and line charts of utility indicators or
runtime against a varying parameter (one curve per configuration in the
Comparison mode).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from repro.engine.results import ComparisonReport, Series

_BLOCK = "█"


def _format_value(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.2e}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def render_bar_chart(
    labels: Sequence[Any],
    values: Sequence[float],
    title: str = "",
    width: int = 40,
    max_rows: int | None = None,
) -> str:
    """Horizontal ASCII bar chart (used for histograms and phase runtimes)."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have the same length")
    rows = list(zip(labels, values))
    if max_rows is not None:
        rows = rows[:max_rows]
    if not rows:
        return f"{title}\n(no data)\n" if title else "(no data)\n"
    longest_label = max(len(str(label)) for label, _ in rows)
    largest = max((abs(float(value)) for _, value in rows), default=0.0)
    lines = [title] if title else []
    for label, value in rows:
        value = float(value)
        filled = 0 if largest == 0 else int(round(width * abs(value) / largest))
        bar = _BLOCK * max(filled, 1 if value else 0)
        lines.append(f"{str(label):>{longest_label}} | {bar} {_format_value(value)}")
    return "\n".join(lines) + "\n"


def render_histogram(histogram: Mapping[str, Any], width: int = 40) -> str:
    """Render the output of :func:`repro.datasets.attribute_histogram`."""
    title = f"Histogram of {histogram.get('attribute', '')}"
    if histogram.get("kind") == "numeric":
        edges = histogram.get("edges", [])
        counts = histogram.get("counts", [])
        labels = [
            f"[{_format_value(low)},{_format_value(high)})"
            for low, high in zip(edges[:-1], edges[1:])
        ]
        return render_bar_chart(labels, counts, title=title, width=width)
    return render_bar_chart(
        histogram.get("labels", []), histogram.get("counts", []), title=title, width=width
    )


def render_line_chart(
    series_list: Sequence[Series],
    title: str = "",
    width: int = 60,
    height: int = 16,
) -> str:
    """ASCII line chart of one or more series sharing the same x values."""
    series_list = [series for series in series_list if len(series)]
    if not series_list:
        return f"{title}\n(no data)\n" if title else "(no data)\n"
    markers = "ox+*#@%&"
    all_y = [y for series in series_list for y in series.y if not math.isinf(y)]
    if not all_y:
        return f"{title}\n(no finite data)\n"
    y_min, y_max = min(all_y), max(all_y)
    if y_max == y_min:
        y_max = y_min + 1.0
    all_x = series_list[0].x
    columns = min(width, max(len(all_x), 1))

    grid = [[" "] * columns for _ in range(height)]
    for series_position, series in enumerate(series_list):
        marker = markers[series_position % len(markers)]
        for point_position, y_value in enumerate(series.y):
            if math.isinf(y_value):
                continue
            column = (
                int(round(point_position * (columns - 1) / max(len(series.y) - 1, 1)))
                if len(series.y) > 1
                else 0
            )
            row = int(round((y_value - y_min) / (y_max - y_min) * (height - 1)))
            grid[height - 1 - row][column] = marker

    lines = [title] if title else []
    lines.append(f"{_format_value(y_max):>10} ┤" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 10 + " │" + "".join(row))
    lines.append(f"{_format_value(y_min):>10} ┤" + "".join(grid[-1]))
    x_axis = " " * 10 + " └" + "─" * columns
    lines.append(x_axis)
    x_labels = (
        f"{_format_value(all_x[0])} … {_format_value(all_x[-1])}"
        if all_x
        else ""
    )
    lines.append(" " * 12 + f"{series_list[0].x_label}: {x_labels}")
    legend = "   ".join(
        f"{markers[i % len(markers)]} {series.name}" for i, series in enumerate(series_list)
    )
    lines.append(" " * 12 + legend)
    return "\n".join(lines) + "\n"


@dataclass
class Figure:
    """A titled collection of series plus its rendered text form."""

    title: str
    series: list[Series] = field(default_factory=list)
    kind: str = "line"  # "line" | "bar"

    def add(self, series: Series) -> "Figure":
        self.series.append(series)
        return self

    def to_text(self, width: int = 60, height: int = 16) -> str:
        if self.kind == "bar":
            if not self.series:
                return f"{self.title}\n(no data)\n"
            first = self.series[0]
            return render_bar_chart(first.x, first.y, title=self.title, width=width)
        return render_line_chart(self.series, title=self.title, width=width, height=height)

    def to_rows(self) -> list[dict[str, Any]]:
        """Tabular form: one row per x value, one column per series."""
        rows: list[dict[str, Any]] = []
        if not self.series:
            return rows
        x_label = self.series[0].x_label
        for position, x_value in enumerate(self.series[0].x):
            row: dict[str, Any] = {x_label: x_value}
            for series in self.series:
                if position < len(series.y):
                    row[series.name] = series.y[position]
            rows.append(row)
        return rows

    def as_dict(self) -> dict:
        return {
            "title": self.title,
            "kind": self.kind,
            "series": [series.as_dict() for series in self.series],
        }


def comparison_figure(report: ComparisonReport, indicator: str, title: str | None = None) -> Figure:
    """One figure per indicator with one curve per configuration (Figure 4 style)."""
    figure = Figure(title=title or f"{indicator} vs {report.parameter}")
    for series in report.series_for(indicator):
        figure.add(series)
    return figure


def phase_runtime_figure(phase_seconds: Mapping[str, float], title: str = "Runtime per phase") -> Figure:
    """Bar chart of an algorithm's per-phase runtime (Figure 3(b) style)."""
    series = Series(name="phase runtime", x_label="phase", y_label="seconds")
    for phase, seconds in phase_seconds.items():
        series.append(phase, seconds)
    return Figure(title=title, series=[series], kind="bar")


def frequency_figure(
    frequencies: Mapping[str, float], title: str, max_rows: int = 20
) -> Figure:
    """Bar chart of value frequencies or per-item errors (Figure 3(c)/(d) style)."""
    series = Series(name="frequency", x_label="value", y_label="count")
    ordered = sorted(frequencies.items(), key=lambda pair: -pair[1])[:max_rows]
    for label, value in ordered:
        if math.isinf(value):
            continue
        series.append(label, value)
    return Figure(title=title, series=[series], kind="bar")
