"""Dense ``uint64`` bitset kernels for record sets.

A set of record indices over an ``n_records``-row dataset is stored as a
little-endian bit vector packed into ``ceil(n_records / 64)`` unsigned 64-bit
words: record ``r`` lives in word ``r >> 6`` at bit ``r & 63``.  Union,
intersection and support then become word-wise ``|`` / ``&`` plus a popcount —
one vectorized NumPy pass over a few KiB instead of Python-level hash-set
algebra over thousands of boxed integers.  These kernels release the GIL for
the duration of each array operation.

All functions are pure; bitsets are plain ``numpy.ndarray`` values and callers
own the memory.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

#: Bits per storage word.
WORD_BITS = 64

_ONE = np.uint64(1)
_WORD_SHIFT = 6  # log2(WORD_BITS)
_BIT_MASK = np.int64(WORD_BITS - 1)

try:  # NumPy >= 2.0
    _bitwise_count = np.bitwise_count
except AttributeError:  # pragma: no cover - exercised only on NumPy 1.x
    _BYTE_POPCOUNT = np.array(
        [bin(value).count("1") for value in range(256)], dtype=np.uint8
    )

    def _bitwise_count(words: np.ndarray) -> np.ndarray:
        return _BYTE_POPCOUNT[words[..., None].view(np.uint8)].sum(axis=-1)


def word_count(n_bits: int) -> int:
    """Number of ``uint64`` words needed to hold ``n_bits`` bits."""
    return (int(n_bits) + WORD_BITS - 1) >> _WORD_SHIFT


def empty_bitset(n_bits: int) -> np.ndarray:
    """An all-zero bitset with capacity for ``n_bits`` bits."""
    return np.zeros(word_count(n_bits), dtype=np.uint64)


def bitset_from_indices(indices: Iterable[int], n_bits: int) -> np.ndarray:
    """Pack an iterable of bit positions into a bitset of capacity ``n_bits``."""
    bits = empty_bitset(n_bits)
    positions = np.fromiter((int(i) for i in indices), dtype=np.int64)
    if positions.size:
        np.bitwise_or.at(
            bits,
            positions >> _WORD_SHIFT,
            _ONE << (positions & _BIT_MASK).astype(np.uint64),
        )
    return bits


def posting_matrix(
    tokens: Sequence[int] | np.ndarray,
    record_ids: Sequence[int] | np.ndarray,
    n_tokens: int,
    n_records: int,
) -> np.ndarray:
    """Per-token posting bitsets from parallel (token, record) occurrence arrays.

    Returns a ``(n_tokens, word_count(n_records))`` ``uint64`` matrix whose
    row ``t`` is the bitset of records containing token ``t``.
    """
    bits = np.zeros((n_tokens, word_count(n_records)), dtype=np.uint64)
    tokens = np.asarray(tokens, dtype=np.int64)
    if tokens.size:
        records = np.asarray(record_ids, dtype=np.int64)
        np.bitwise_or.at(
            bits,
            (tokens, records >> _WORD_SHIFT),
            _ONE << (records & _BIT_MASK).astype(np.uint64),
        )
    return bits


def popcount(bits: np.ndarray) -> int:
    """Total number of set bits (the cardinality of the record set)."""
    return int(_bitwise_count(bits).sum())


def popcount_rows(matrix: np.ndarray) -> np.ndarray:
    """Per-row set-bit counts of a 2-D bitset matrix."""
    return _bitwise_count(matrix).sum(axis=1, dtype=np.int64)


def union_rows(matrix: np.ndarray, rows: Sequence[int] | np.ndarray) -> np.ndarray:
    """Bitwise OR of the selected ``rows`` of a posting matrix (empty → zeros)."""
    rows = np.asarray(rows, dtype=np.int64)
    if rows.size == 0:
        return np.zeros(matrix.shape[1], dtype=np.uint64)
    if rows.size == 1:
        return matrix[rows[0]].copy()
    return np.bitwise_or.reduce(matrix[rows], axis=0)


def intersect_rows(
    matrix: np.ndarray, rows: Sequence[int] | np.ndarray
) -> np.ndarray:
    """Bitwise AND of the selected ``rows`` of a posting matrix (empty → zeros).

    The empty intersection is *not* the universe: callers asking for the
    records containing "all of no items" should not call this at all, so the
    degenerate case resolves to the conservative empty set.
    """
    rows = np.asarray(rows, dtype=np.int64)
    if rows.size == 0:
        return np.zeros(matrix.shape[1], dtype=np.uint64)
    if rows.size == 1:
        return matrix[rows[0]].copy()
    return np.bitwise_and.reduce(matrix[rows], axis=0)


def indices_of(bits: np.ndarray) -> np.ndarray:
    """The sorted bit positions set in ``bits`` (inverse of packing)."""
    # Force a little-endian byte view so bit i of each word unpacks to
    # position i regardless of the host's endianness.
    flat = np.unpackbits(
        np.ascontiguousarray(bits, dtype="<u8").view(np.uint8), bitorder="little"
    )
    return np.flatnonzero(flat)
