"""REP006 — worker-pool payloads must survive pickling under spawn.

``WorkerPool`` runs with the spawn start method: everything crossing the
process boundary is pickled.  The manifest's ``spec_classes`` are the
dataclasses shipped inside task tuples; this rule bans fields whose types
can never pickle (locks, shared-memory handles, open files, executors) and
lambda defaults.  It also checks the worker argument of the pool entry
points (``run_many``/``fan_out_shared``/``pool.map``): lambdas and local
functions fail at fan-out time with an opaque pickling error, so the rule
surfaces them at lint time instead.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterable

from repro.analysis.core import Finding, ModuleContext, Rule, register
from repro.analysis.manifest import InvariantManifest, WorkerCall

if TYPE_CHECKING:
    from repro.analysis.core import Project


def _annotation_names(annotation: ast.expr) -> Iterable[str]:
    for node in ast.walk(annotation):
        if isinstance(node, ast.Name):
            yield node.id
        elif isinstance(node, ast.Attribute):
            yield node.attr
        elif isinstance(node, ast.Constant) and isinstance(node.value, str):
            # String annotations ("Lock") still name the type.
            yield node.value.split("[")[0].strip()


def _worker_call_key(
    call: ast.Call, worker_calls: dict[str, WorkerCall]
) -> tuple[str, WorkerCall] | None:
    func = call.func
    if isinstance(func, ast.Name) and func.id in worker_calls:
        return func.id, worker_calls[func.id]
    if isinstance(func, ast.Attribute):
        receiver = func.value
        receiver_name = (
            receiver.id
            if isinstance(receiver, ast.Name)
            else receiver.attr
            if isinstance(receiver, ast.Attribute)
            else ""
        )
        for key, spec in worker_calls.items():
            if "." in key:
                key_receiver, _, key_attr = key.partition(".")
                if func.attr == key_attr and key_receiver in receiver_name:
                    return key, spec
            elif func.attr == key:
                return key, spec
    return None


def _can_reach_process_mode(call: ast.Call, spec: WorkerCall) -> bool:
    """Whether this call site can end up pickling its worker."""
    if spec.process_only:
        return True
    for keyword in call.keywords:
        if keyword.arg == "mode":
            value = keyword.value
            if isinstance(value, ast.Constant) and isinstance(value.value, str):
                return value.value == "process"
            return True  # dynamic mode expression: assume the worst
    return False  # run_many defaults resolve to sequential/thread


@register
class ProcessSafety(Rule):
    code = "REP006"
    name = "process-safety"
    summary = "pool payload classes and worker callables must be picklable under spawn"
    explanation = (
        "WorkerPool uses the spawn start method, so task payloads and worker "
        "callables are pickled into the children.  The manifest's "
        "spec_classes (AnonymizationConfig, ExperimentResources, "
        "ParameterSweep, the shared-memory manifests) must therefore not "
        "declare fields typed as locks, threads, SharedMemory handles, open "
        "files, executors or pools — those either fail to pickle or, worse, "
        "pickle into a disconnected copy.  Lambda field defaults and lambda/"
        "local-function workers passed to run_many/fan_out_shared/pool.map "
        "fail at fan-out time with an opaque PicklingError; this rule moves "
        "that failure to lint time.  Worker names are resolved through the "
        "project call graph, so a local function passed by name — or a "
        "factory call whose summary says it returns a nested function — is "
        "caught wherever it was defined, not just when it sits next to the "
        "call.  Hold live resources in the runner process and ship "
        "names/specs, as SharedDatasetManifest does."
    )

    def check_module(
        self, module: ModuleContext, manifest: InvariantManifest
    ) -> Iterable[Finding]:
        forbidden = frozenset(manifest.forbidden_field_types)
        spec_classes = frozenset(manifest.spec_classes)
        worker_calls = dict(manifest.worker_calls)

        for node in module.walk():
            if isinstance(node, ast.ClassDef):
                if f"{module.relpath}::{module.qualname(node)}" not in spec_classes:
                    continue
                yield from self._check_spec_class(module, node, forbidden)
            elif isinstance(node, ast.Call) and worker_calls:
                yield from self._check_worker_call(module, node, worker_calls)

    def _check_spec_class(
        self, module: ModuleContext, node: ast.ClassDef, forbidden: frozenset[str]
    ) -> Iterable[Finding]:
        for statement in node.body:
            if isinstance(statement, ast.AnnAssign) and isinstance(
                statement.target, ast.Name
            ):
                bad = sorted(
                    set(_annotation_names(statement.annotation)) & forbidden
                )
                if bad:
                    yield module.finding(
                        self,
                        statement,
                        f"field {statement.target.id!r} is typed as "
                        f"unpicklable {', '.join(bad)}; ship a name/spec and "
                        f"reopen the resource in the worker",
                    )
            for inner in ast.walk(statement):
                if isinstance(inner, ast.Lambda):
                    yield module.finding(
                        self,
                        inner,
                        "lambda in a pool payload class does not pickle; "
                        "use a module-level function",
                    )
                    break

    def _check_worker_call(
        self, module: ModuleContext, call: ast.Call, worker_calls: dict[str, WorkerCall]
    ) -> Iterable[Finding]:
        resolved = _worker_call_key(call, worker_calls)
        if resolved is None:
            return
        key, spec = resolved
        if not _can_reach_process_mode(call, spec):
            return
        worker: ast.expr | None = None
        if spec.arg < len(call.args):
            worker = call.args[spec.arg]
        for keyword in call.keywords:
            if keyword.arg == "worker":
                worker = keyword.value
        if worker is None:
            return
        if isinstance(worker, ast.Lambda):
            yield module.finding(
                self,
                worker,
                f"lambda worker passed to {key}() cannot pickle under "
                f"spawn; use a module-level function",
            )

    def finalize(self, project: "Project") -> Iterable[Finding]:
        """Call-graph pass: workers passed by name or built by factories.

        The per-module check catches a lambda sitting in the argument list;
        this pass resolves worker *names* through the project call graph
        (a nested function is unpicklable no matter how far from the call it
        was defined) and follows factory calls whose summary says they
        return a nested function or lambda.
        """
        worker_calls = dict(project.manifest.worker_calls)
        if not worker_calls:
            return
        from repro.analysis.dataflow import project_summaries

        graph = project.graph()
        summaries = project_summaries(project)
        for site in graph.all_call_sites():
            resolved = _worker_call_key(site.call, worker_calls)
            if resolved is None:
                continue
            key, spec = resolved
            if not _can_reach_process_mode(site.call, spec):
                continue
            worker: ast.expr | None = None
            if spec.arg < len(site.call.args):
                worker = site.call.args[spec.arg]
            for keyword in site.call.keywords:
                if keyword.arg == "worker":
                    worker = keyword.value
            module = project.module(site.module)
            if worker is None or module is None:
                continue
            if isinstance(worker, ast.Name):
                worker_id, _ = graph.resolve_name(
                    site.module, site.caller, worker.id
                )
                info = graph.function(worker_id) if worker_id else None
                if info is not None and info.nested:
                    yield module.finding(
                        self,
                        worker,
                        f"worker {worker.id!r} passed to {key}() is a local "
                        f"function and cannot pickle under spawn; move it to "
                        f"module level",
                    )
            elif isinstance(worker, ast.Call):
                factory_id, _ = graph.resolve_call(
                    site.module, site.caller, worker
                )
                summary = summaries.get(factory_id)
                if summary is not None and summary.returns_nested_function:
                    yield module.finding(
                        self,
                        worker,
                        f"worker built by {key}()'s factory argument is a "
                        f"nested function/lambda and cannot pickle under "
                        f"spawn; return a module-level callable instead",
                    )
