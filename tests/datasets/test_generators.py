"""Tests for synthetic dataset generators."""

import pytest

from repro.datasets import (
    generate_adult_like,
    generate_market_basket,
    generate_rt_dataset,
    toy_rt_dataset,
    value_frequencies,
)
from repro.exceptions import DatasetError


class TestAdultLike:
    def test_shape_and_schema(self):
        dataset = generate_adult_like(n_records=100, seed=1)
        assert len(dataset) == 100
        assert dataset.schema["Age"].is_numeric
        assert dataset.schema["Education"].is_categorical
        assert not dataset.schema["Disease"].quasi_identifier

    def test_deterministic_for_same_seed(self):
        a = generate_adult_like(n_records=50, seed=42)
        b = generate_adult_like(n_records=50, seed=42)
        assert a.to_rows() == b.to_rows()

    def test_different_seeds_differ(self):
        a = generate_adult_like(n_records=50, seed=1)
        b = generate_adult_like(n_records=50, seed=2)
        assert a.to_rows() != b.to_rows()

    def test_age_bounds(self):
        dataset = generate_adult_like(n_records=300, seed=3)
        ages = dataset.column("Age")
        assert min(ages) >= 17
        assert max(ages) <= 90

    def test_invalid_size_rejected(self):
        with pytest.raises(DatasetError):
            generate_adult_like(n_records=0)

    def test_sensitive_attribute_optional(self):
        dataset = generate_adult_like(n_records=10, include_sensitive=False)
        assert "Disease" not in dataset.schema


class TestMarketBasket:
    def test_shape(self):
        dataset = generate_market_basket(n_records=100, n_items=20, seed=1)
        assert len(dataset) == 100
        assert dataset.schema["Items"].is_transaction
        assert len(dataset.item_universe()) <= 20

    def test_skewed_item_distribution(self):
        dataset = generate_market_basket(n_records=500, n_items=40, seed=2)
        frequencies = sorted(value_frequencies(dataset, "Items").values(), reverse=True)
        # The most popular item should dominate the median item.
        assert frequencies[0] > 3 * frequencies[len(frequencies) // 2]

    def test_baskets_are_non_empty(self):
        dataset = generate_market_basket(n_records=200, n_items=15, seed=3)
        assert all(len(record["Items"]) >= 1 for record in dataset)

    def test_deterministic(self):
        a = generate_market_basket(n_records=30, seed=7)
        b = generate_market_basket(n_records=30, seed=7)
        assert a.to_rows() == b.to_rows()

    def test_invalid_parameters(self):
        with pytest.raises(DatasetError):
            generate_market_basket(n_records=0)
        with pytest.raises(DatasetError):
            generate_market_basket(n_items=0)
        with pytest.raises(DatasetError):
            generate_market_basket(avg_items_per_record=0)


class TestRtDataset:
    def test_combines_relational_and_transaction(self):
        dataset = generate_rt_dataset(n_records=80, n_items=20, seed=5)
        assert dataset.is_rt_dataset
        assert len(dataset) == 80
        assert dataset.single_transaction_attribute() == "Items"

    def test_deterministic(self):
        a = generate_rt_dataset(n_records=40, seed=11)
        b = generate_rt_dataset(n_records=40, seed=11)
        assert a.to_rows() == b.to_rows()

    def test_toy_dataset_is_rt(self):
        toy = toy_rt_dataset()
        assert toy.is_rt_dataset
        assert len(toy) == 8
