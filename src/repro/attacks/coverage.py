"""Shared adversary semantics: what a published cell can(not) rule out.

Both attack implementations — the bitset kernels in
:mod:`repro.attacks.simulator` and the per-record scalar oracle in
:mod:`repro.attacks.oracle` — must agree *exactly* on two questions:

* **Coverage** — given a target's original cell value, can a published
  (possibly generalized) cell belong to that target?  A label *covers* a
  value when the value is among the original values the label may stand
  for; a record whose every published QI cell covers the target's values
  cannot be excluded by the adversary and belongs to the matching set.
* **Knowledge enumeration** — which item combinations (size 1..m drawn from
  the target's original basket) the adversary tries, and in which order.
  The order fixes which combination is reported as the witness when several
  reach the same (worst) matching-set size.

Centralising both here is what makes "kernel bit-identical to oracle" a
meaningful claim: the two paths share the *semantics* and differ only in the
set algebra (uint64 bitsets vs Python sets).

Coverage is deliberately conservative in the adversary's favour only when
the published cell carries no information: a suppressed (``†``), root
(``*``) or missing cell can never exclude a target, and an attribute whose
original value the adversary does not know (``None``) constrains nothing.
Everything else resolves through the same label interpretation the metrics
use (:func:`repro.index.interpreter_for`), so hierarchy nodes, interval
labels and explicit item groups all match the utility-loss reading.
"""

from __future__ import annotations

import itertools
from typing import Callable, Iterable, Iterator, Sequence

from repro.hierarchy.hierarchy import Hierarchy
from repro.index import interpreter_for
from repro.metrics.interpretation import SUPPRESSED


class AttributeCoverage:
    """Memoized "does this published label cover that original value" oracle.

    One instance per quasi-identifier attribute; decisions are cached per
    (label, value) pair, so the kernels' distinct-code cross products and the
    scalar path's per-record probes hit the same memo.
    """

    __slots__ = ("attribute", "numeric", "_interpreter", "_memo")

    def __init__(
        self,
        attribute: str,
        numeric: bool,
        hierarchy: Hierarchy | None = None,
    ) -> None:
        self.attribute = attribute
        self.numeric = numeric
        self._interpreter = interpreter_for(hierarchy)
        self._memo: dict[tuple, bool] = {}

    def covers(self, label: object, value: object) -> bool:
        """Whether a record published as ``label`` could be the ``value`` target."""
        if value is None:
            # The adversary does not know this attribute of the target, so it
            # cannot be used to exclude anyone.
            return True
        if label is None:
            return True
        key = (label, value)
        cached = self._memo.get(key)
        if cached is None:
            cached = self._decide(str(label), value)
            self._memo[key] = cached
        return cached

    def _decide(self, label: str, value: object) -> bool:
        if label in (SUPPRESSED, "*"):
            # A withheld or root-generalized cell stands for the whole
            # domain: it can never exclude a target.
            return True
        if label == str(value):
            return True
        if self.numeric:
            target = _as_number(value)
            if target is not None:
                published = _as_number(label)
                if published is not None:
                    return published == target
                span = self._interpreter.span(label)
                if span is not None:
                    low, high = span
                    return low <= target <= high
                return any(
                    (leaf_number := _as_number(leaf)) is not None
                    and leaf_number == target
                    for leaf in self._interpreter.leaves(label)
                )
        return str(value) in self._interpreter.leaves(label)


def _as_number(value: object) -> float | None:
    """``value`` as a float, or ``None`` when it is not a plain number."""
    try:
        return float(value)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        return None


def coverage_for(
    attributes: Sequence[str],
    numeric_attributes: Iterable[str],
    hierarchies: dict[str, Hierarchy] | None = None,
) -> dict[str, AttributeCoverage]:
    """One :class:`AttributeCoverage` per quasi-identifier attribute."""
    hierarchies = hierarchies or {}
    numeric = set(numeric_attributes)
    return {
        attribute: AttributeCoverage(
            attribute, attribute in numeric, hierarchies.get(attribute)
        )
        for attribute in attributes
    }


def knowledge_combos(
    items: Iterable[object], m: int
) -> Iterator[tuple[str, ...]]:
    """All item combinations an m-item adversary may know about one target.

    Sizes ascending, lexicographic within a size, over the *sorted distinct*
    original items of the target's basket — a total order both attack paths
    share, so "the first combination reaching the minimum" is well defined.
    """
    ordered = sorted({str(item) for item in items})
    for size in range(1, min(m, len(ordered)) + 1):
        yield from itertools.combinations(ordered, size)


def best_knowledge(
    items: Iterable[object],
    m: int,
    support_of: Callable[[tuple[str, ...]], int],
    cap: int | None = None,
    initial: int = 0,
) -> tuple[int, tuple[str, ...] | None, bool]:
    """The adversary's best (smallest nonzero) matching set for one target.

    ``support_of`` maps an item combination to its matching-set size in the
    anonymized output; combinations with support 0 mean the adversary's
    knowledge matches *nothing* (e.g. every trace of the items was
    suppressed) and are skipped — an attack that finds no candidates
    identifies no one.  ``initial`` seeds the minimum with the size of the
    knowledge-free matching set (the QI-only matching set in the combined
    attack); ``cap`` bounds the enumeration per target for huge baskets.

    Returns ``(best_size, witness_combo, truncated)`` with ``best_size == 0``
    when no knowledge yields a nonempty matching set, and ``witness_combo``
    ``None`` when the seed minimum was never beaten.
    """
    best = initial if initial > 0 else 0
    witness: tuple[str, ...] | None = None
    enumerated = 0
    for combo in knowledge_combos(items, m):
        if cap is not None and enumerated >= cap:
            return best, witness, True
        enumerated += 1
        support = support_of(combo)
        if 0 < support and (best == 0 or support < best):
            best = support
            witness = combo
    return best, witness, False
