"""Information-loss metrics for transaction (set-valued) attributes.

The measures mirror the evaluation of the transaction-anonymization papers
SECRETA integrates:

* **Utility Loss (UL)** — every generalized item is charged by the fraction of
  the item universe it may stand for, and every suppressed item by 1; the
  charges are summed over all records and normalised by the total number of
  items in the original data.  0 means intact, 1 means everything was
  suppressed or generalized to the root.
* **Suppression ratio** — fraction of original item occurrences that no longer
  appear (not even under a generalized item) in the anonymized data.
* **Item frequency error** — the average relative error of per-item supports
  estimated from the anonymized data (the series plotted in the Evaluation
  screen, Figure 3(d)).
"""

from __future__ import annotations

from typing import Mapping

from repro.datasets.dataset import Dataset
from repro.datasets.statistics import value_frequencies
from repro.exceptions import DatasetError
from repro.hierarchy.hierarchy import Hierarchy
from repro.metrics.interpretation import label_leaves


def item_generalization_cost(
    label: str, universe_size: int, hierarchy: Hierarchy | None = None
) -> float:
    """Cost of publishing ``label`` instead of an original item.

    An original item costs 0, a generalized item ``(a,b,c)`` costs
    ``(3 - 1) / (|I| - 1)``, and the root (all items) costs 1.
    """
    if universe_size <= 1:
        return 0.0
    size = len(label_leaves(str(label), hierarchy))
    return max(0, size - 1) / (universe_size - 1)


def _covered_items(
    itemset: frozenset, hierarchy: Hierarchy | None, universe: set[str]
) -> set[str]:
    """Original items that remain (possibly generalized) in an anonymized itemset."""
    covered: set[str] = set()
    for label in itemset:
        covered.update(label_leaves(str(label), hierarchy, universe=universe))
    return covered & universe


def utility_loss(
    original: Dataset,
    anonymized: Dataset,
    attribute: str | None = None,
    hierarchy: Hierarchy | None = None,
) -> float:
    """UL of an anonymized transaction attribute (0 intact .. 1 destroyed)."""
    attribute = attribute or original.single_transaction_attribute()
    if len(original) != len(anonymized):
        raise DatasetError(
            "utility_loss expects aligned datasets "
            f"({len(original)} vs {len(anonymized)} records)"
        )
    universe = original.item_universe(attribute)
    universe_size = len(universe)
    total_items = sum(len(record[attribute]) for record in original)
    if total_items == 0:
        return 0.0

    loss = 0.0
    for original_record, anonymized_record in zip(original, anonymized):
        source_items = original_record[attribute]
        if not source_items:
            continue
        target_labels = anonymized_record[attribute]
        covered = _covered_items(target_labels, hierarchy, universe)
        # Charge each original item: 1 if it disappeared, otherwise the cost
        # of the most specific label that still covers it.
        for item in source_items:
            if item not in covered:
                loss += 1.0
                continue
            best = 1.0
            for label in target_labels:
                leaves = label_leaves(str(label), hierarchy, universe=universe)
                if item in leaves:
                    best = min(
                        best,
                        item_generalization_cost(label, universe_size, hierarchy),
                    )
            loss += best
    return loss / total_items


def suppression_ratio(
    original: Dataset,
    anonymized: Dataset,
    attribute: str | None = None,
    hierarchy: Hierarchy | None = None,
) -> float:
    """Fraction of original item occurrences that vanished from the output."""
    attribute = attribute or original.single_transaction_attribute()
    if len(original) != len(anonymized):
        raise DatasetError("suppression_ratio expects aligned datasets")
    universe = original.item_universe(attribute)
    total = 0
    suppressed = 0
    for original_record, anonymized_record in zip(original, anonymized):
        covered = _covered_items(anonymized_record[attribute], hierarchy, universe)
        for item in original_record[attribute]:
            total += 1
            if item not in covered:
                suppressed += 1
    return suppressed / total if total else 0.0


def estimated_item_frequencies(
    anonymized: Dataset,
    universe: set[str],
    attribute: str | None = None,
    hierarchy: Hierarchy | None = None,
) -> dict[str, float]:
    """Expected support of each original item, estimated from anonymized data.

    A record containing the generalized item ``g`` contributes ``1/|leaves(g)|``
    to every original item ``g`` may stand for (uniformity assumption).
    """
    attribute = attribute or anonymized.single_transaction_attribute()
    estimates = {item: 0.0 for item in universe}
    for record in anonymized:
        for label in record[attribute]:
            leaves = label_leaves(str(label), hierarchy, universe=universe) & set(universe)
            if not leaves:
                continue
            weight = 1.0 / len(leaves)
            for item in leaves:
                estimates[item] += weight
    return estimates


def item_frequency_error(
    original: Dataset,
    anonymized: Dataset,
    attribute: str | None = None,
    hierarchy: Hierarchy | None = None,
    floor: float = 1.0,
) -> dict[str, float]:
    """Per-item relative error between original and estimated supports."""
    attribute = attribute or original.single_transaction_attribute()
    universe = original.item_universe(attribute)
    actual = value_frequencies(original, attribute)
    estimated = estimated_item_frequencies(
        anonymized, universe, attribute=attribute, hierarchy=hierarchy
    )
    return {
        item: abs(estimated.get(item, 0.0) - actual.get(item, 0))
        / max(actual.get(item, 0), floor)
        for item in sorted(universe)
    }


def average_item_frequency_error(
    original: Dataset,
    anonymized: Dataset,
    attribute: str | None = None,
    hierarchy: Hierarchy | None = None,
    floor: float = 1.0,
) -> float:
    """Mean of :func:`item_frequency_error` over the item universe."""
    errors = item_frequency_error(
        original, anonymized, attribute=attribute, hierarchy=hierarchy, floor=floor
    )
    return sum(errors.values()) / len(errors) if errors else 0.0
