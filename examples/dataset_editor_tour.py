"""A tour of the Dataset, Configuration and Queries editors.

Mirrors the first part of the demonstration plan ("Using the Dataset
Editor" / "Using the Configuration and Queries Editor"): load a dataset from
CSV, edit attribute names and values, add and delete rows, plot histograms,
browse a hierarchy, edit the query workload, and export everything.

Run with::

    python examples/dataset_editor_tour.py [output-directory]
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro import Attribute, Session
from repro.queries import Query, RangeCondition


def main(output_directory: str | None = None) -> None:
    output = Path(output_directory) if output_directory else Path(tempfile.mkdtemp(prefix="secreta-tour-"))

    # Create a CSV on disk first, then load it the way a user would.
    seed_session = Session.generate_rt(n_records=120, n_items=20, seed=29)
    csv_path = seed_session.dataset_editor.save(output / "input.csv")
    session = Session.from_csv(csv_path, transaction_columns=["Items"])
    editor = session.dataset_editor
    print(f"Loaded {len(session.dataset)} records from {csv_path}")

    # -- edit the dataset ------------------------------------------------------------
    editor.rename_attribute("Workclass", "Employment")
    editor.set_value(2, "Education", "Doctorate")
    editor.add_record(
        {
            "Age": 33,
            "Hours": 40,
            "Employment": "Private",
            "Education": "Masters",
            "Marital": "Married",
            "Occupation": "Tech",
            "Gender": "Female",
            "Disease": "Flu",
            "Items": ["i001", "i002"],
        }
    )
    editor.delete_record(0)
    editor.add_attribute(Attribute.categorical("Country", quasi_identifier=False), default="GR")
    print("After editing:", session.dataset)
    editor.undo()   # drop the Country column again
    print("After undo  :", session.dataset.schema.names)

    # -- analyze ---------------------------------------------------------------------
    print()
    print(session.histogram_text("Employment"))
    print(session.histogram_text("Age", bins=6))

    # -- hierarchies and queries --------------------------------------------------------
    session.configuration_editor.generate_hierarchies(fanout=3)
    print("Items hierarchy paths (first 3):")
    for path in session.configuration_editor.browse_hierarchy("Items")[:3]:
        print("   ", " -> ".join(path))

    session.queries_editor.generate(n_queries=10, seed=1)
    session.queries_editor.add_query(
        Query(conditions={"Age": RangeCondition(30, 40)}, items=["i001"])
    )
    print("\nQuery workload:")
    for line in session.queries_editor.describe()[:5]:
        print("   ", line)

    # -- export -----------------------------------------------------------------------
    written = session.export_all_inputs(output)
    print("\nExported:")
    for kind, path in written.items():
        print(f"   {kind}: {path}")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else None)
