"""Result containers produced by the Evaluation and Comparison modes.

These objects are what the Experimentation Module hands to the Plotting and
Data Export modules: plain data holders with utility indicators, runtimes and
the series needed to regenerate every figure of the demonstration scenarios.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.algorithms.base import AnonymizationResult
from repro.attacks.simulator import AttackResult
from repro.datasets.dataset import Dataset
from repro.engine.resilience import RunReport

#: Attack-derived sweep indicators: the empirical guarantee each simulated
#: adversary observes, plus the worst per-record re-identification risk.
ATTACK_INDICATORS = (
    "attack_qi_k",
    "attack_item_km",
    "attack_rt_k",
    "attack_max_risk",
)


@dataclass
class Series:
    """A named x/y series (one curve of a SECRETA plot)."""

    name: str
    x_label: str
    y_label: str
    x: list[Any] = field(default_factory=list)
    y: list[float] = field(default_factory=list)

    def append(self, x_value: Any, y_value: float) -> None:
        self.x.append(x_value)
        self.y.append(float(y_value))

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "x_label": self.x_label,
            "y_label": self.y_label,
            "x": list(self.x),
            "y": list(self.y),
        }

    def rows(self) -> list[tuple[Any, float]]:
        return list(zip(self.x, self.y))

    def __len__(self) -> int:
        return len(self.x)


@dataclass
class EvaluationReport:
    """The outcome of evaluating one configuration on one dataset."""

    configuration: dict[str, Any]
    result: AnonymizationResult
    utility: dict[str, float]
    privacy: dict[str, Any]
    #: ARE of the query workload (``None`` when the resources carry no
    #: workload — a dataset with nothing to query).
    are: float | None
    runtime_seconds: float
    phase_seconds: dict[str, float]
    generalized_value_frequencies: dict[str, dict[str, int]] = field(default_factory=dict)
    item_frequency_errors: dict[str, float] = field(default_factory=dict)
    #: Simulated re-identification attacks against the anonymized output
    #: (empty unless the evaluator ran with ``simulate_attacks=True``), keyed
    #: ``"qi"`` / ``"item"`` / ``"rt"`` by adversary model.
    attacks: dict[str, AttackResult] = field(default_factory=dict)

    @property
    def anonymized(self) -> Dataset:
        return self.result.dataset

    def attack_indicator(self, indicator: str) -> float | None:
        """The value of one :data:`ATTACK_INDICATORS` entry (``None`` = absent).

        An attack whose ``empirical_k`` is ``None`` (the adversary never
        found a candidate) yields no point rather than a misleading zero.
        """
        per_attack = {
            "attack_qi_k": "qi",
            "attack_item_km": "item",
            "attack_rt_k": "rt",
        }
        if indicator in per_attack:
            attack = self.attacks.get(per_attack[indicator])
            if attack is None or attack.empirical_k is None:
                return None
            return float(attack.empirical_k)
        if indicator == "attack_max_risk":
            if not self.attacks:
                return None
            return max(attack.max_risk for attack in self.attacks.values())
        return None

    def summary(self) -> dict[str, Any]:
        """The flat summary row shown by the "message box" after a run."""
        row = {
            "configuration": self.configuration.get("label"),
            "are": self.are,
            "runtime_seconds": self.runtime_seconds,
            **{f"utility_{key}": value for key, value in self.utility.items()},
            **{f"privacy_{key}": value for key, value in self.privacy.items()},
        }
        for name, attack in self.attacks.items():
            row[f"attack_{name}_empirical_k"] = attack.empirical_k
            row[f"attack_{name}_max_risk"] = attack.max_risk
        return row


@dataclass
class SweepResult:
    """Utility indicators and runtime across one varying-parameter sweep."""

    configuration: dict[str, Any]
    parameter: str
    values: list[Any]
    series: dict[str, Series]
    reports: list[EvaluationReport] = field(default_factory=list)
    #: How the sweep's fan-out actually went (attempts, retries, respawns,
    #: degradations); ``None`` for plain sequential/thread runs without an
    #: execution policy.  Excluded from :meth:`as_dict` exports — recovery
    #: timing is not part of the scientific result.
    run_report: RunReport | None = None

    def series_names(self) -> list[str]:
        return sorted(self.series)

    def as_dict(self) -> dict:
        return {
            "configuration": self.configuration,
            "parameter": self.parameter,
            "values": list(self.values),
            "series": {name: series.as_dict() for name, series in self.series.items()},
        }


@dataclass
class ComparisonReport:
    """The outcome of the Comparison mode: one sweep per configuration."""

    parameter: str
    values: list[Any]
    sweeps: list[SweepResult]
    #: Fan-out account of the comparison itself (one entry per
    #: configuration-task); ``None`` without a policy or process fan-out.
    run_report: RunReport | None = None

    def series_for(self, indicator: str) -> list[Series]:
        """One series per configuration for the requested indicator."""
        return [sweep.series[indicator] for sweep in self.sweeps if indicator in sweep.series]

    def indicators(self) -> list[str]:
        names: set[str] = set()
        for sweep in self.sweeps:
            names.update(sweep.series)
        return sorted(names)

    def table(self, indicator: str) -> list[dict[str, Any]]:
        """Rows of ``parameter value x configuration`` for one indicator."""
        rows = []
        for position, value in enumerate(self.values):
            row: dict[str, Any] = {self.parameter: value}
            for sweep in self.sweeps:
                series = sweep.series.get(indicator)
                if series is not None and position < len(series.y):
                    row[sweep.configuration.get("label", "config")] = series.y[position]
            rows.append(row)
        return rows

    def as_dict(self) -> dict:
        return {
            "parameter": self.parameter,
            "values": list(self.values),
            "sweeps": [sweep.as_dict() for sweep in self.sweeps],
        }


def merge_series(series_list: Iterable[Series], name: str, x_label: str, y_label: str) -> Series:
    """Concatenate several series into one (used for per-phase runtime bars)."""
    merged = Series(name=name, x_label=x_label, y_label=y_label)
    for series in series_list:
        for x_value, y_value in series.rows():
            merged.append(x_value, y_value)
    return merged
