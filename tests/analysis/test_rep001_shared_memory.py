"""REP001: shared-memory lifecycle fixtures."""

from __future__ import annotations

from lint_harness import new_codes

UNGUARDED = """
    from multiprocessing import shared_memory

    def leak(size):
        segment = shared_memory.SharedMemory(create=True, size=size)
        return segment.name
"""

TRY_FINALLY = """
    from multiprocessing import shared_memory

    def careful(size):
        segment = shared_memory.SharedMemory(create=True, size=size)
        try:
            return segment.name
        finally:
            segment.unlink()
"""

EXCEPT_RERAISE = """
    from multiprocessing import shared_memory

    def careful(size):
        segment = shared_memory.SharedMemory(create=True, size=size)
        try:
            return fill(segment)
        except Exception:
            segment.unlink()
            raise
"""

FINALIZE_GUARD = """
    import weakref
    from multiprocessing import shared_memory

    class Export:
        def __init__(self, size):
            self._segment = shared_memory.SharedMemory(create=True, size=size)
            self._finalizer = weakref.finalize(self, cleanup, self._segment)
"""

WITH_STATEMENT = """
    from multiprocessing import shared_memory

    def scoped(size):
        with shared_memory.SharedMemory(create=True, size=size) as segment:
            return segment.name
"""

ATTACH_ONLY = """
    from multiprocessing import shared_memory

    def attach(name):
        return shared_memory.SharedMemory(name=name)
"""

NESTED_FINALIZE_DOES_NOT_GUARD = """
    import weakref
    from multiprocessing import shared_memory

    def leak(size):
        segment = shared_memory.SharedMemory(create=True, size=size)

        def later():
            weakref.finalize(segment, segment.unlink)

        return segment
"""


class TestRep001:
    def test_unguarded_create_is_flagged(self, harness):
        findings = harness.findings("src/pkg/mod.py", UNGUARDED, select=["REP001"])
        assert new_codes(findings) == ["REP001"]
        assert findings[0].symbol == "leak"

    def test_try_finally_unlink_is_clean(self, harness):
        assert harness.findings("src/pkg/mod.py", TRY_FINALLY, select=["REP001"]) == []

    def test_except_cleanup_with_reraise_is_clean(self, harness):
        findings = harness.findings(
            "src/pkg/mod.py", EXCEPT_RERAISE, select=["REP001"]
        )
        assert new_codes(findings) == []

    def test_weakref_finalize_in_same_scope_is_clean(self, harness):
        assert (
            harness.findings("src/pkg/mod.py", FINALIZE_GUARD, select=["REP001"])
            == []
        )

    def test_context_manager_is_clean(self, harness):
        assert (
            harness.findings("src/pkg/mod.py", WITH_STATEMENT, select=["REP001"])
            == []
        )

    def test_attach_without_create_is_clean(self, harness):
        assert harness.findings("src/pkg/mod.py", ATTACH_ONLY, select=["REP001"]) == []

    def test_finalize_in_nested_function_does_not_count(self, harness):
        findings = harness.findings(
            "src/pkg/mod.py", NESTED_FINALIZE_DOES_NOT_GUARD, select=["REP001"]
        )
        assert new_codes(findings) == ["REP001"]

    def test_suppression_with_reason_is_honored(self, harness):
        source = UNGUARDED.replace(
            "create=True, size=size)",
            "create=True, size=size)  # repro: allow[REP001] -- fixture leak",
        )
        findings = harness.findings("src/pkg/mod.py", source, select=["REP001"])
        assert len(findings) == 1
        assert findings[0].suppressed
        assert findings[0].suppression_reason == "fixture leak"
        assert new_codes(findings) == []
