"""Tests for the headless Dataset Editor."""

import pytest

from repro.datasets import Attribute, DatasetEditor, toy_rt_dataset
from repro.exceptions import DatasetError


@pytest.fixture
def editor() -> DatasetEditor:
    return DatasetEditor(toy_rt_dataset())


class TestEditing:
    def test_rename_attribute(self, editor):
        editor.rename_attribute("Education", "Degree")
        assert "Degree" in editor.dataset.schema

    def test_set_value_and_undo(self, editor):
        original = editor.dataset[0]["Age"]
        editor.set_value(0, "Age", 99)
        assert editor.dataset[0]["Age"] == 99
        editor.undo()
        assert editor.dataset[0]["Age"] == original

    def test_add_and_delete_record(self, editor):
        n = len(editor.dataset)
        editor.add_record({"Age": 33, "Education": "Masters", "Items": ["tea"]})
        assert len(editor.dataset) == n + 1
        editor.delete_record(0)
        assert len(editor.dataset) == n

    def test_add_and_delete_attribute(self, editor):
        editor.add_attribute(Attribute.categorical("Country"), default="GR")
        assert editor.dataset.column("Country") == ["GR"] * len(editor.dataset)
        editor.delete_attribute("Country")
        assert "Country" not in editor.dataset.schema

    def test_transform_column(self, editor):
        editor.transform_column("Age", lambda age: age + 1)
        assert editor.dataset[0]["Age"] == 26


class TestUndoRedo:
    def test_undo_redo_cycle(self, editor):
        editor.set_value(0, "Age", 99)
        editor.undo()
        assert editor.dataset[0]["Age"] == 25
        editor.redo()
        assert editor.dataset[0]["Age"] == 99

    def test_new_edit_clears_redo(self, editor):
        editor.set_value(0, "Age", 99)
        editor.undo()
        editor.set_value(0, "Age", 50)
        assert not editor.can_redo
        with pytest.raises(DatasetError):
            editor.redo()

    def test_undo_empty_history_raises(self, editor):
        with pytest.raises(DatasetError):
            editor.undo()

    def test_multiple_undo_steps(self, editor):
        editor.set_value(0, "Age", 1)
        editor.set_value(0, "Age", 2)
        editor.set_value(0, "Age", 3)
        editor.undo()
        editor.undo()
        assert editor.dataset[0]["Age"] == 1
        editor.undo()
        assert editor.dataset[0]["Age"] == 25


class TestPersistenceAndAnalysis:
    def test_open_save_round_trip(self, tmp_path, editor):
        path = editor.save(tmp_path / "out.csv")
        reopened = DatasetEditor.open(path, transaction_columns=["Items"])
        assert len(reopened.dataset) == len(editor.dataset)

    def test_histogram_delegates_to_statistics(self, editor):
        histogram = editor.histogram("Education")
        assert histogram["kind"] == "categorical"
        assert sum(histogram["counts"]) == len(editor.dataset)
