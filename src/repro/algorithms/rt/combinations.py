"""Enumeration of the relational x transaction algorithm combinations.

The SECRETA paper highlights that the system "enables the use of 20 different
combinations of algorithms to anonymize RT-datasets": each of the 4 relational
algorithms can be paired with each of the 5 transaction algorithms, and the
pair is glued together by one of the 3 bounding methods.  This module exposes
that combination space so the Comparison mode and the benchmarks can sweep it.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass


@dataclass(frozen=True)
class RtCombination:
    """One relational+transaction pairing under a bounding method."""

    relational: str
    transaction: str
    bounding: str = "rtmerger"

    @property
    def label(self) -> str:
        """Compact display label, e.g. ``cluster+coat/rtmerger``."""
        return f"{self.relational}+{self.transaction}/{self.bounding}"


def algorithm_pairs() -> list[tuple[str, str]]:
    """The 4 x 5 = 20 relational/transaction algorithm pairs."""
    # Imported lazily: the registry itself imports the bounding classes from
    # this package, so a module-level import would be circular.
    from repro.algorithms.registry import relational_algorithms, transaction_algorithms

    return list(itertools.product(relational_algorithms(), transaction_algorithms()))


def iter_combinations(bounding: str | None = None) -> list[RtCombination]:
    """All combinations, for one bounding method or for all three."""
    from repro.algorithms.registry import bounding_methods

    boundings = [bounding] if bounding is not None else bounding_methods()
    return [
        RtCombination(relational=relational, transaction=transaction, bounding=method)
        for method in boundings
        for relational, transaction in algorithm_pairs()
    ]


def combination_count(include_boundings: bool = False) -> int:
    """20 pairs, or 60 when counting each bounding method separately."""
    from repro.algorithms.registry import bounding_methods

    pairs = len(algorithm_pairs())
    return pairs * len(bounding_methods()) if include_boundings else pairs
