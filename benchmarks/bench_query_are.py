"""Micro-benchmark: columnar query-estimation kernel speedup over the scan.

Measures the ARE hot path on a 50-query workload over a 50k-record
RT-dataset, anonymized in the style of a cluster + item-grouping run
(interval labels, group labels, a root ``*`` tail on both sides):

* **estimate** — :meth:`Query.estimate` over the anonymized data under
  ``universe_mode="original"``.  Baseline: the per-record scan
  (``vectorized=False``, the exact semantic reference).  Kernel: the
  per-distinct-label probability tables gathered through the columnar code
  arrays plus the CSR ``maximum.reduceat`` item reduction.  Both sides share
  one set of prebuilt universe-keyed interpreters (the workload-evaluation
  regime) and the kernel is asserted bit-for-bit equal per query.
* **count** — :meth:`Query.count` over the original data.  Baseline: the
  per-record match scan.  Kernel: per-distinct-value match tables plus
  AND+popcount over the required items' posting bitsets.
* **are** — :func:`average_relative_error` end to end (count + estimate per
  query), both ways.

Besides asserting the >= 5x acceptance bar on the estimator, the run writes
a machine-readable ``BENCH_are.json`` at the repository root (seconds and
speedups per workload) so the repo carries a perf trajectory file.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_query_are.py

or through pytest (only collected when addressed explicitly)::

    python -m pytest benchmarks/bench_query_are.py -m slow -s
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.datasets import DatasetDomains, generate_rt_dataset
from repro.hierarchy.builders import format_interval
from repro.queries import average_relative_error, generate_query_workload
from repro.queries.are import workload_interpreters

REPO_ROOT = Path(__file__).resolve().parent.parent
TRAJECTORY_FILE = REPO_ROOT / "BENCH_are.json"

N_RECORDS = 50_000
N_QUERIES = 50
REQUIRED_SPEEDUP = 5.0


# -- workload construction --------------------------------------------------------
def generalized_copy(dataset, attributes, transaction_attribute):
    """A cluster + item-grouping output: intervals, groups, root ``*`` tails."""
    anonymized = dataset.copy(name=f"{dataset.name}[generalized]")
    for name in attributes:
        if dataset.schema[name].is_numeric:
            anonymized.map_column(
                name,
                lambda value: (
                    None
                    if value is None
                    else format_interval(10 * (int(value) // 10), 10 * (int(value) // 10) + 9)
                ),
            )
        else:
            domain = sorted({str(v) for v in dataset.column(name) if v is not None})
            groups = [domain[n : n + 3] for n in range(0, len(domain), 3)]
            mapping = {}
            for position, group in enumerate(groups):
                label = "*" if position == len(groups) - 1 else "(" + ",".join(group) + ")"
                for value in group:
                    mapping[value] = label
            anonymized.map_column(name, lambda value: mapping.get(value, value))
    # Item side: group every third item triple, root-generalize the tail —
    # the hierarchy-free labels the universe mode exists for.
    universe = sorted(dataset.item_universe(transaction_attribute))
    item_mapping: dict[str, str] = {}
    for position in range(0, len(universe) - 6, 3):
        triple = universe[position : position + 3]
        label = "(" + ",".join(triple) + ")"
        for item in triple:
            item_mapping[item] = label
    for item in universe[-6:]:
        item_mapping[item] = "*"
    anonymized.map_column(
        transaction_attribute,
        lambda itemset: {item_mapping.get(item, item) for item in itemset},
    )
    return anonymized


def timed_best(function, *args, repeats: int = 3, **kwargs):
    """(result, best-of-``repeats`` wall time) for a steady-state measurement."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = function(*args, **kwargs)
        best = min(best, time.perf_counter() - start)
    return result, best


def workload_estimates(workload, anonymized, interpreters, domains, vectorized):
    return [
        query.estimate(
            anonymized,
            interpreters=interpreters,
            domains=domains,
            universe_mode="original",
            vectorized=vectorized,
        )
        for query in workload
    ]


def workload_counts(workload, original, vectorized):
    return [query.count(original, vectorized=vectorized) for query in workload]


# -- main -------------------------------------------------------------------------
def run_benchmark(
    n_records: int = N_RECORDS,
    n_queries: int = N_QUERIES,
    scan_repeats: int = 1,
    kernel_repeats: int = 3,
) -> dict:
    original = generate_rt_dataset(n_records=n_records, n_items=40, seed=2014)
    attributes = [a.name for a in original.schema.relational if a.quasi_identifier]
    transaction_attribute = original.schema.transaction_names[0]
    anonymized = generalized_copy(original, attributes, transaction_attribute)
    workload = generate_query_workload(original, n_queries=n_queries, seed=7)
    domains = DatasetDomains.capture(original)
    interpreters = workload_interpreters(None, domains)

    # Estimation over the anonymized output (the ARE hot path).
    scan_estimates, scan_estimate_seconds = timed_best(
        workload_estimates, workload, anonymized, interpreters, domains, False,
        repeats=scan_repeats,
    )
    kernel_estimates, kernel_estimate_seconds = timed_best(
        workload_estimates, workload, anonymized, interpreters, domains, True,
        repeats=kernel_repeats,
    )
    assert kernel_estimates == scan_estimates  # bit-for-bit, not approximately

    # Exact counting over the original data.
    scan_counts, scan_count_seconds = timed_best(
        workload_counts, workload, original, False, repeats=scan_repeats
    )
    kernel_counts, kernel_count_seconds = timed_best(
        workload_counts, workload, original, True, repeats=kernel_repeats
    )
    assert kernel_counts == scan_counts

    # End-to-end ARE, both ways (count + estimate per query).
    scan_are, scan_are_seconds = timed_best(
        average_relative_error, workload, original, anonymized,
        domains=domains, vectorized=False, repeats=scan_repeats,
    )
    kernel_are, kernel_are_seconds = timed_best(
        average_relative_error, workload, original, anonymized,
        domains=domains, vectorized=True, repeats=kernel_repeats,
    )
    assert kernel_are.are == scan_are.are

    def entry(scan_seconds: float, kernel_seconds: float, **extra) -> dict:
        return {
            "baseline_seconds": scan_seconds,
            "kernel_seconds": kernel_seconds,
            "speedup": scan_seconds / kernel_seconds,
            "baseline_queries_per_second": n_queries / scan_seconds,
            "kernel_queries_per_second": n_queries / kernel_seconds,
            **extra,
        }

    return {
        "dataset": {
            "n_records": n_records,
            "n_queries": n_queries,
            "relational_attributes": len(attributes),
            "items": len(original.item_universe(transaction_attribute)),
        },
        "estimate": entry(scan_estimate_seconds, kernel_estimate_seconds),
        "count": entry(scan_count_seconds, kernel_count_seconds),
        "are": entry(scan_are_seconds, kernel_are_seconds, value=kernel_are.are),
    }


def write_trajectory(payload: dict) -> Path:
    TRAJECTORY_FILE.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return TRAJECTORY_FILE


@pytest.mark.slow
def test_query_estimation_kernel_speedup(record):
    payload = run_benchmark()
    record("query_are", payload)
    write_trajectory(payload)
    assert payload["estimate"]["speedup"] >= REQUIRED_SPEEDUP


def test_query_estimation_equivalence_smoke():
    """Fast CI smoke: scan and kernel paths agree on a small dataset.

    In CI (``CI`` set) the small-size payload is also written to
    ``BENCH_are.json`` so the workflow can upload it as an artifact; local
    test runs leave the committed 50k-record trajectory untouched.
    """
    payload = run_benchmark(
        n_records=2_500, n_queries=10, scan_repeats=1, kernel_repeats=1
    )
    if os.environ.get("CI"):
        write_trajectory(payload)
    # run_benchmark asserts scan/kernel equality internally; sanity-check the
    # payload shape here.
    assert payload["are"]["value"] >= 0.0
    assert payload["estimate"]["baseline_seconds"] > 0.0


if __name__ == "__main__":
    result = run_benchmark()
    path = write_trajectory(result)
    print(
        f"dataset: {result['dataset']['n_records']} records, "
        f"{result['dataset']['n_queries']} queries, "
        f"{result['dataset']['items']} items"
    )
    for name in ("estimate", "count", "are"):
        workload = result[name]
        print(
            f"{name}: baseline {workload['baseline_seconds']:.3f}s, "
            f"kernel {workload['kernel_seconds']:.3f}s, "
            f"speedup {workload['speedup']:.1f}x"
        )
    print(f"trajectory written to {path}")
