"""Attribute and schema definitions for SECRETA datasets.

SECRETA operates on *RT-datasets*: tables whose columns are either

* **relational** attributes — single-valued, either categorical (e.g.
  ``Education``) or numeric (e.g. ``Age``); these are the quasi-identifiers
  protected through *k*-anonymity, and
* **transaction** attributes — set-valued (e.g. the items a customer
  purchased or the diagnosis codes of a patient), protected through
  *k*:sup:`m`-anonymity or constraint-based models.

This module defines the attribute metadata (:class:`Attribute`) and the
ordered collection of attributes that forms a dataset schema
(:class:`Schema`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.exceptions import SchemaError


class AttributeKind(enum.Enum):
    """The three kinds of attributes SECRETA distinguishes."""

    CATEGORICAL = "categorical"
    NUMERIC = "numeric"
    TRANSACTION = "transaction"

    @property
    def is_relational(self) -> bool:
        """``True`` for single-valued (categorical or numeric) attributes."""
        return self is not AttributeKind.TRANSACTION


@dataclass(frozen=True)
class Attribute:
    """Metadata describing a single dataset column.

    Parameters
    ----------
    name:
        Column name, unique within a schema.
    kind:
        Whether the column is categorical, numeric or set-valued.
    quasi_identifier:
        Whether the column participates in the privacy model.  Non
        quasi-identifier relational columns are carried through anonymization
        untouched (they play the role of sensitive or payload attributes).
    """

    name: str
    kind: AttributeKind
    quasi_identifier: bool = True

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("attribute name must be a non-empty string")

    @property
    def is_relational(self) -> bool:
        return self.kind.is_relational

    @property
    def is_transaction(self) -> bool:
        return self.kind is AttributeKind.TRANSACTION

    @property
    def is_numeric(self) -> bool:
        return self.kind is AttributeKind.NUMERIC

    @property
    def is_categorical(self) -> bool:
        return self.kind is AttributeKind.CATEGORICAL

    @staticmethod
    def categorical(name: str, quasi_identifier: bool = True) -> "Attribute":
        """Convenience constructor for a categorical relational attribute."""
        return Attribute(name, AttributeKind.CATEGORICAL, quasi_identifier)

    @staticmethod
    def numeric(name: str, quasi_identifier: bool = True) -> "Attribute":
        """Convenience constructor for a numeric relational attribute."""
        return Attribute(name, AttributeKind.NUMERIC, quasi_identifier)

    @staticmethod
    def transaction(name: str, quasi_identifier: bool = True) -> "Attribute":
        """Convenience constructor for a set-valued transaction attribute."""
        return Attribute(name, AttributeKind.TRANSACTION, quasi_identifier)


class Schema:
    """An ordered, name-addressable collection of :class:`Attribute` objects.

    The schema preserves the column order of the underlying dataset and
    offers convenient views of the relational and transaction sub-schemas,
    which is how the anonymization algorithms address the data.
    """

    def __init__(self, attributes: Iterable[Attribute]):
        self._attributes: list[Attribute] = list(attributes)
        names = [attribute.name for attribute in self._attributes]
        duplicates = {name for name in names if names.count(name) > 1}
        if duplicates:
            raise SchemaError(
                f"duplicate attribute names in schema: {sorted(duplicates)}"
            )
        self._by_name: dict[str, Attribute] = {
            attribute.name: attribute for attribute in self._attributes
        }
        self._index: dict[str, int] = {
            attribute.name: position
            for position, attribute in enumerate(self._attributes)
        }

    # -- container protocol -------------------------------------------------
    def __len__(self) -> int:
        return len(self._attributes)

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self._attributes)

    def __contains__(self, name: object) -> bool:
        return name in self._by_name

    def __getitem__(self, name: str) -> Attribute:
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(f"unknown attribute {name!r}") from None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._attributes == other._attributes

    def __repr__(self) -> str:
        names = ", ".join(attribute.name for attribute in self._attributes)
        return f"Schema([{names}])"

    # -- accessors ----------------------------------------------------------
    @property
    def names(self) -> list[str]:
        """All attribute names, in column order."""
        return [attribute.name for attribute in self._attributes]

    @property
    def attributes(self) -> list[Attribute]:
        """All attributes, in column order (a defensive copy)."""
        return list(self._attributes)

    @property
    def relational(self) -> list[Attribute]:
        """Relational (single-valued) attributes, in column order."""
        return [a for a in self._attributes if a.is_relational]

    @property
    def transaction(self) -> list[Attribute]:
        """Transaction (set-valued) attributes, in column order."""
        return [a for a in self._attributes if a.is_transaction]

    @property
    def relational_names(self) -> list[str]:
        return [a.name for a in self.relational]

    @property
    def transaction_names(self) -> list[str]:
        return [a.name for a in self.transaction]

    @property
    def quasi_identifiers(self) -> list[Attribute]:
        """Attributes that participate in the privacy model."""
        return [a for a in self._attributes if a.quasi_identifier]

    def index_of(self, name: str) -> int:
        """Position of ``name`` in the schema's column order."""
        try:
            return self._index[name]
        except KeyError:
            raise SchemaError(f"unknown attribute {name!r}") from None

    def is_rt_schema(self) -> bool:
        """Whether the schema has both relational and transaction attributes."""
        return bool(self.relational) and bool(self.transaction)

    # -- modification (returns new Schema; schemas are immutable) -----------
    def with_attribute(self, attribute: Attribute) -> "Schema":
        """Return a new schema with ``attribute`` appended."""
        return Schema(self._attributes + [attribute])

    def without_attribute(self, name: str) -> "Schema":
        """Return a new schema with attribute ``name`` removed."""
        if name not in self._by_name:
            raise SchemaError(f"unknown attribute {name!r}")
        return Schema([a for a in self._attributes if a.name != name])

    def renamed(self, old_name: str, new_name: str) -> "Schema":
        """Return a new schema with ``old_name`` renamed to ``new_name``."""
        if old_name not in self._by_name:
            raise SchemaError(f"unknown attribute {old_name!r}")
        if new_name in self._by_name and new_name != old_name:
            raise SchemaError(f"attribute {new_name!r} already exists")
        replaced = [
            Attribute(new_name, a.kind, a.quasi_identifier)
            if a.name == old_name
            else a
            for a in self._attributes
        ]
        return Schema(replaced)
