"""Common infrastructure shared by all anonymization algorithms.

Every algorithm in SECRETA — relational, transaction, or an RT combination —
is exposed through the same small interface so the engine can configure,
execute, time and compare them uniformly:

* :class:`Anonymizer` — the abstract base: a named, parameterised object with
  an ``anonymize(dataset)`` method returning an :class:`AnonymizationResult`.
* :class:`AnonymizationResult` — the anonymized dataset plus bookkeeping the
  Experimentation Module plots: wall-clock runtime, per-phase runtimes and
  algorithm-specific statistics.
* :class:`PhaseTimer` — a tiny helper for recording phase runtimes (the
  Evaluation screen plots "the time needed to execute the algorithm and its
  different phases").
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from repro.datasets.dataset import Dataset
from repro.exceptions import ConfigurationError
from repro.hierarchy.hierarchy import Hierarchy
from repro.metrics.relational import quasi_identifier_attributes


@dataclass
class AnonymizationResult:
    """The output of one anonymization run."""

    dataset: Dataset
    algorithm: str
    parameters: dict[str, Any] = field(default_factory=dict)
    runtime_seconds: float = 0.0
    phase_seconds: dict[str, float] = field(default_factory=dict)
    statistics: dict[str, Any] = field(default_factory=dict)

    def summary(self) -> dict[str, Any]:
        """A flat summary row (what the message box / results table shows)."""
        row: dict[str, Any] = {
            "algorithm": self.algorithm,
            "records": len(self.dataset),
            "runtime_seconds": round(self.runtime_seconds, 6),
        }
        row.update({f"param_{key}": value for key, value in self.parameters.items()})
        row.update(self.statistics)
        return row


class PhaseTimer:
    """Accumulates named phase durations and the total runtime."""

    def __init__(self) -> None:
        self._start = time.perf_counter()
        self.phases: dict[str, float] = {}

    def phase(self, name: str) -> "_PhaseContext":
        """Context manager measuring one named phase."""
        return _PhaseContext(self, name)

    def add(self, name: str, seconds: float) -> None:
        self.phases[name] = self.phases.get(name, 0.0) + seconds

    @property
    def total(self) -> float:
        return time.perf_counter() - self._start


class _PhaseContext:
    def __init__(self, timer: PhaseTimer, name: str):
        self._timer = timer
        self._name = name
        self._began = 0.0

    def __enter__(self) -> "_PhaseContext":
        self._began = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self._timer.add(self._name, time.perf_counter() - self._began)


class Anonymizer(abc.ABC):
    """Base class of every anonymization algorithm.

    Subclasses set :attr:`name` (the identifier used by configurations and the
    registry) and :attr:`data_kind` (``"relational"``, ``"transaction"`` or
    ``"rt"``), and implement :meth:`anonymize`.
    """

    #: Registry identifier (e.g. ``"incognito"``); overridden by subclasses.
    name: str = "abstract"
    #: The kind of dataset the algorithm applies to.
    data_kind: str = "relational"

    @abc.abstractmethod
    def anonymize(self, dataset: Dataset) -> AnonymizationResult:
        """Anonymize ``dataset`` and return the result with its statistics."""

    def parameters(self) -> dict[str, Any]:
        """The algorithm's configuration, for reporting (overridden as needed)."""
        return {}

    def __repr__(self) -> str:
        parameters = ", ".join(f"{k}={v!r}" for k, v in self.parameters().items())
        return f"{type(self).__name__}({parameters})"

    @staticmethod
    def _build_index(dataset: Dataset, attribute: str):
        """Posting-list index the constraint-based transaction algorithms
        (COAT, PCTA) run their support computations on.

        A test hook: overriding it (e.g. with ``cached=False``) verifies that
        union memoization never changes algorithm output.
        """
        from repro.index import InvertedIndex

        return InvertedIndex.from_dataset(dataset, attribute)


# -- shared helpers ----------------------------------------------------------------
def relational_quasi_identifiers(dataset: Dataset) -> list[str]:
    """Names of the relational quasi-identifier attributes of ``dataset``."""
    return quasi_identifier_attributes(dataset)


def require_hierarchies(
    attributes: Sequence[str], hierarchies: Mapping[str, Hierarchy], algorithm: str
) -> None:
    """Raise a configuration error when a needed hierarchy is missing."""
    missing = [name for name in attributes if name not in hierarchies]
    if missing:
        raise ConfigurationError(
            f"{algorithm} needs a generalization hierarchy for attributes {missing}"
        )


def validate_k(k: int, dataset_size: int, algorithm: str) -> None:
    """Validate the privacy parameter ``k`` against the dataset size."""
    if k < 2:
        raise ConfigurationError(f"{algorithm}: k must be at least 2 (got {k})")
    if dataset_size and k > dataset_size:
        raise ConfigurationError(
            f"{algorithm}: k={k} exceeds the dataset size ({dataset_size} records); "
            "no generalization can satisfy it"
        )


def apply_value_mapping(
    dataset: Dataset, attribute: str, mapping: Mapping[Any, str]
) -> None:
    """Rewrite a relational column in place through ``mapping`` (identity fallback)."""
    dataset.map_column(attribute, lambda value: mapping.get(value, value))


def apply_item_mapping(
    dataset: Dataset, attribute: str, mapping: Mapping[str, str | None]
) -> None:
    """Rewrite a transaction column in place through an item mapping.

    Items mapped to ``None`` are suppressed; unmapped items are kept.  The
    resulting cell is a set, so duplicates introduced by generalization
    collapse automatically.
    """

    def rewrite(itemset) -> list[str]:
        rewritten = []
        for item in itemset:
            image = mapping.get(item, item)
            if image is not None:
                rewritten.append(image)
        return rewritten

    dataset.map_column(attribute, rewrite)
