"""Guarantee-conformance suite: empirical privacy of every anonymizer.

For every anonymizer × adversarial generator pairing, the simulated
prior-knowledge adversary must observe an empirical guarantee at least as
strong as the promised one — ``k̂ >= k`` against the knowledge model the
algorithm actually protects against:

* ``cluster`` (relational k-anonymity) → the QI adversary,
* ``coat`` / ``pcta`` (constraint-based; the default privacy policy protects
  *single* items) → the 1-item adversary,
* ``apriori`` (hierarchy-based blanket k^m) → the m-item adversary,
* RT bounding (``cluster`` + ``apriori``) → the combined QI + m-item
  adversary of the (k, k^m) model.

A deliberately weakened "anonymizer" must be *caught*: the attack reports
``k̂ < k`` with concrete witness records, and the analytic checkers
(:mod:`repro.metrics.privacy_checks`) corroborate with their own
counterexamples.  See ``docs/validation.md``.
"""

import pytest

from repro.attacks import item_attack, qi_attack, rt_attack
from repro.datasets.generators import (
    ADVERSARIAL_GENERATORS,
    generate_outlier_rt,
)
from repro.engine.config import relational_config, rt_config, transaction_config
from repro.frontend.session import Session
from repro.metrics import k_violations, equivalence_classes

K = 3
GENERATOR_PARAMS = dict(n_records=80, n_items=16, seed=23)

#: anonymizer id -> (configuration, attacks whose empirical k must reach k).
CONFORMANCE_MATRIX = {
    "cluster": (relational_config("cluster", k=K), ("qi",)),
    "coat": (transaction_config("coat", k=K, m=1), ("item",)),
    "pcta": (transaction_config("pcta", k=K, m=1), ("item",)),
    "rt-bounding": (rt_config("cluster", "apriori", k=K, m=2), ("qi", "item", "rt")),
}


def generated(name):
    return ADVERSARIAL_GENERATORS[name](**GENERATOR_PARAMS)


@pytest.mark.parametrize("generator", sorted(ADVERSARIAL_GENERATORS))
@pytest.mark.parametrize("anonymizer", sorted(CONFORMANCE_MATRIX))
def test_empirical_guarantee_holds(anonymizer, generator):
    config, attacked = CONFORMANCE_MATRIX[anonymizer]
    session = Session(generated(generator))
    report = session.evaluate(config, simulate_attacks=True)
    assert set(attacked) <= set(report.attacks), report.attacks.keys()
    for attack_name in attacked:
        attack = report.attacks[attack_name]
        assert not attack.truncated
        assert attack.empirical_k is not None, f"{attack_name} found no candidates"
        assert attack.empirical_k >= K, (
            f"{anonymizer} on {generator}: {attack_name} adversary observed "
            f"k̂ = {attack.empirical_k} < {K} "
            f"(records {attack.worst_records}, knowledge {attack.worst_knowledge})"
        )


@pytest.mark.parametrize("generator", sorted(ADVERSARIAL_GENERATORS))
def test_hierarchy_based_km_promise_at_m2(generator):
    """Apriori's blanket k^m promise holds for pairs of known items."""
    session = Session(generated(generator))
    report = session.evaluate(
        transaction_config("apriori", k=K, m=2), simulate_attacks=True
    )
    attack = report.attacks["item"]
    assert attack.empirical_k is not None and attack.empirical_k >= K


class TestWeakenedAnonymizerIsCaught:
    """A broken anonymizer must produce a failing attack *with a witness*."""

    @pytest.fixture
    def original(self):
        # Outliers make some QI tuples unique: leaking them is detectable.
        return generate_outlier_rt(**GENERATOR_PARAMS, outlier_fraction=0.1)

    def identity_anonymizer(self, dataset):
        """The maximally weakened anonymizer: publishes the input verbatim."""
        return dataset.copy()

    def test_identity_anonymizer_fails_qi_attack(self, original):
        published = self.identity_anonymizer(original)
        attack = qi_attack(original, published)
        assert attack.empirical_k == 1
        assert attack.max_risk == 1.0
        assert attack.worst_records, "a failing attack must name its victims"
        # The analytic checker corroborates with the same class of witnesses.
        analytic = k_violations(published, K, max_violations=None)
        assert analytic
        violated = {index for violation in analytic for index in violation.records}
        assert set(attack.worst_records) <= violated

    def test_leaking_one_class_is_caught_with_witnesses(self, original):
        """De-generalizing a single equivalence class breaks k̂ locally."""
        session = Session(original)
        report = session.evaluate(relational_config("cluster", k=K))
        assert report.privacy["k_anonymous"]
        published = report.anonymized.copy()
        attributes = [
            attribute.name
            for attribute in original.schema.relational
            if attribute.quasi_identifier
        ]
        # Pick a class whose original QI tuples are pairwise distinct, then
        # leak it: republish those records with their original values.
        leaked = None
        for _, indices in equivalence_classes(published, attributes).items():
            tuples = {
                tuple(original[index][name] for name in attributes)
                for index in indices
            }
            if len(tuples) == len(indices):
                leaked = indices
                break
        assert leaked is not None
        for index in leaked:
            for name in attributes:
                published.set_value(index, name, original[index][name])

        attack = qi_attack(original, published)
        assert attack.empirical_k is not None and attack.empirical_k < K
        assert set(attack.worst_records) <= set(leaked)
        analytic = k_violations(published, K, attributes, max_violations=None)
        violated = {index for violation in analytic for index in violation.records}
        assert set(attack.worst_records) <= violated

    def test_weakened_item_side_is_caught(self, original):
        """Publishing raw baskets exposes records through rare items."""
        published = self.identity_anonymizer(original)
        attack = item_attack(original, published, m=1)
        assert attack.empirical_k == 1
        assert attack.worst_knowledge is not None
        # The witness knowledge is a genuinely isolating item.
        rt = rt_attack(original, published, m=1)
        assert rt.empirical_k == 1
