"""The interpretation index: shared, memoized lookups for hot paths.

Every information-loss metric, the query-answering layer and the
constraint-based transaction algorithms keep asking the same two questions:

* *what original values may this generalized label stand for?* — answered by
  :class:`LabelInterpreter`, a memoized view of
  :func:`repro.metrics.interpretation.label_leaves` (plus the derived
  generalization costs, numeric spans and per-itemset aggregates the metrics
  need), keyed by one (hierarchy, item universe) pair, and
* *which records contain an item of this group?* — answered by
  :class:`InvertedIndex`, per-item posting lists with memoized group unions.

Use :func:`interpreter_for` to obtain interpreters: it hands out one shared
instance per (hierarchy, universe) pair so that repeated metric calls over
the same experiment resources — a parameter sweep, a comparison run — reuse
a single cache instead of re-deriving leaf sets per record per label.
"""

from __future__ import annotations

from repro.index.interpreter import (
    LabelInterpreter,
    evict_when_full,
    generalization_cost,
    interpreter_for,
)
from repro.index.inverted import InvertedIndex

__all__ = [
    "LabelInterpreter",
    "InvertedIndex",
    "evict_when_full",
    "generalization_cost",
    "interpreter_for",
]
