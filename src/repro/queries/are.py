"""Average Relative Error (ARE).

ARE (Xu et al., KDD 2006) is SECRETA's "de facto utility indicator": it
measures how accurately a query workload can be answered on the anonymized
data.  For each query the exact count on the original dataset is compared to
the estimate obtained from the anonymized dataset, and the relative errors are
averaged::

    ARE = (1/|W|) * sum_q |estimate_q - actual_q| / max(actual_q, floor)

The ``floor`` (called a *sanity bound* in the literature) avoids dividing by
zero for queries with no matching records.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.datasets.dataset import Dataset
from repro.exceptions import QueryError
from repro.hierarchy.hierarchy import Hierarchy
from repro.index import LabelInterpreter, interpreter_for
from repro.queries.query import Query
from repro.queries.workload import QueryWorkload


@dataclass(frozen=True)
class QueryEvaluation:
    """Per-query evaluation record (actual count, estimate, relative error)."""

    query: Query
    actual: float
    estimate: float
    relative_error: float


@dataclass(frozen=True)
class AreResult:
    """The outcome of evaluating a workload on original vs. anonymized data."""

    are: float
    per_query: tuple[QueryEvaluation, ...]

    @property
    def worst_query(self) -> QueryEvaluation | None:
        if not self.per_query:
            return None
        return max(self.per_query, key=lambda entry: entry.relative_error)

    def summary(self) -> dict:
        return {
            "are": self.are,
            "queries": len(self.per_query),
            "max_relative_error": max(
                (entry.relative_error for entry in self.per_query), default=0.0
            ),
        }


def relative_error(actual: float, estimate: float, floor: float = 1.0) -> float:
    """Relative error of one estimate with a sanity floor on the denominator."""
    if floor <= 0:
        raise QueryError("the sanity floor must be positive")
    return abs(estimate - actual) / max(actual, floor)


def evaluate_query(
    query: Query,
    original: Dataset,
    anonymized: Dataset,
    hierarchies: Mapping[str, Hierarchy] | None = None,
    floor: float = 1.0,
    interpreters: Mapping[str, LabelInterpreter] | None = None,
) -> QueryEvaluation:
    """Evaluate one query on the original and the anonymized dataset."""
    actual = float(query.count(original))
    estimate = float(
        query.estimate(anonymized, hierarchies=hierarchies, interpreters=interpreters)
    )
    return QueryEvaluation(
        query=query,
        actual=actual,
        estimate=estimate,
        relative_error=relative_error(actual, estimate, floor=floor),
    )


def workload_interpreters(
    hierarchies: Mapping[str, Hierarchy] | None,
) -> dict[str, LabelInterpreter]:
    """One shared label interpreter per hierarchy-backed attribute.

    Built once per workload evaluation so every query of the workload resolves
    generalized labels through the same memoized index instead of re-walking
    hierarchies per record per query.
    """
    return {
        attribute: interpreter_for(hierarchy)
        for attribute, hierarchy in (hierarchies or {}).items()
    }


def average_relative_error(
    workload: QueryWorkload,
    original: Dataset,
    anonymized: Dataset,
    hierarchies: Mapping[str, Hierarchy] | None = None,
    floor: float = 1.0,
) -> AreResult:
    """Evaluate a whole workload and return the ARE with per-query detail."""
    interpreters = workload_interpreters(hierarchies)
    per_query = tuple(
        evaluate_query(
            query,
            original,
            anonymized,
            hierarchies=hierarchies,
            floor=floor,
            interpreters=interpreters,
        )
        for query in workload
    )
    are = sum(entry.relative_error for entry in per_query) / len(per_query)
    return AreResult(are=are, per_query=per_query)
