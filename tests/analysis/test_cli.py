"""End-to-end CLI behavior: formats, baseline workflow, exit codes."""

from __future__ import annotations

import json

from lint_harness import LintHarness

from repro.analysis.cli import main

SWALLOWED = """
def swallow():
    try:
        work()
    except Exception:
        pass
"""

MANIFEST_TOML = """
[rep005]
scope = ["src"]
"""


def _setup(tmp_path):
    harness = LintHarness(tmp_path)
    harness.write("src/mod.py", SWALLOWED)
    harness.write("invariants.toml", MANIFEST_TOML)
    return harness


def _run(tmp_path, *extra: str) -> int:
    return main(
        [
            "src",
            "--root",
            str(tmp_path),
            "--manifest",
            str(tmp_path / "invariants.toml"),
            *extra,
        ]
    )


class TestCli:
    def test_finding_fails_with_exit_1(self, tmp_path, capsys):
        _setup(tmp_path)
        assert _run(tmp_path) == 1
        out = capsys.readouterr().out
        assert "REP005" in out
        assert "1 new finding(s)" in out

    def test_clean_tree_exits_0(self, tmp_path, capsys):
        harness = LintHarness(tmp_path)
        harness.write("src/mod.py", "x = 1\n")
        harness.write("invariants.toml", MANIFEST_TOML)
        assert _run(tmp_path) == 0

    def test_json_format(self, tmp_path, capsys):
        _setup(tmp_path)
        assert _run(tmp_path, "--format", "json") == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["new"] == 1
        assert payload["findings"][0]["code"] == "REP005"
        assert payload["findings"][0]["status"] == "new"

    def test_write_baseline_then_clean(self, tmp_path, capsys):
        _setup(tmp_path)
        assert _run(tmp_path, "--write-baseline") == 0
        baseline_path = tmp_path / ".repro-lint-baseline.json"
        assert baseline_path.exists()
        payload = json.loads(baseline_path.read_text())
        assert payload["entries"][0]["code"] == "REP005"
        assert "TODO" in payload["entries"][0]["reason"]
        capsys.readouterr()
        # With the baseline in place the same tree is clean...
        assert _run(tmp_path) == 0
        assert "1 baselined" in capsys.readouterr().out
        # ...and --no-baseline resurfaces the finding.
        assert _run(tmp_path, "--no-baseline") == 1

    def test_baseline_expires_when_line_changes(self, tmp_path):
        harness = _setup(tmp_path)
        assert _run(tmp_path, "--write-baseline") == 0
        harness.write(
            "src/mod.py", SWALLOWED.replace("except Exception:", "except BaseException:")
        )
        assert _run(tmp_path) == 1

    def test_explain(self, capsys):
        assert main(["--explain", "REP002"]) == 0
        out = capsys.readouterr().out
        assert "REP002" in out
        assert "cache" in out

    def test_explain_unknown_code_exits_2(self, capsys):
        assert main(["--explain", "REP999"]) == 2
        assert "unknown rule code" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("REP001", "REP002", "REP003", "REP004", "REP005", "REP006"):
            assert code in out

    def test_bad_path_exits_2(self, tmp_path, capsys):
        assert main(["nonexistent", "--root", str(tmp_path)]) == 2
        assert "error" in capsys.readouterr().err

    def test_verbose_lists_suppressed(self, tmp_path, capsys):
        harness = LintHarness(tmp_path)
        harness.write(
            "src/mod.py",
            SWALLOWED.replace(
                "except Exception:",
                "except Exception:  # repro: allow[REP005] -- fixture cleanup",
            ),
        )
        harness.write("invariants.toml", MANIFEST_TOML)
        assert _run(tmp_path) == 0
        assert "(suppressed)" not in capsys.readouterr().out
        assert _run(tmp_path, "--verbose") == 0
        assert "(suppressed)" in capsys.readouterr().out
