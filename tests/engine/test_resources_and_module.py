"""Tests for experiment resources and the Anonymization Module."""

import pytest

from repro.algorithms import Coat, Incognito, Pcta, RTmerger
from repro.engine import (
    AnonymizationModule,
    ExperimentResources,
    relational_config,
    rt_config,
    transaction_config,
)
from repro.exceptions import ConfigurationError
from repro.hierarchy import build_item_hierarchy


class TestResources:
    def test_prepare_generates_hierarchies_for_relational(self, rt_dataset):
        config = relational_config("incognito", k=4)
        resources = ExperimentResources.prepare(rt_dataset, config)
        relational = [a.name for a in rt_dataset.schema.relational if a.quasi_identifier]
        assert set(relational) <= set(resources.hierarchies)
        assert resources.workload is not None

    def test_prepare_generates_item_hierarchy_and_policies(self, rt_dataset):
        config = transaction_config("coat", k=4)
        resources = ExperimentResources.prepare(rt_dataset, config)
        assert resources.item_hierarchy is not None
        assert resources.privacy_policy is not None
        assert resources.privacy_policy.k == 4
        assert resources.utility_policy is not None

    def test_policies_not_generated_for_hierarchy_algorithms(self, rt_dataset):
        config = transaction_config("apriori", k=4)
        resources = ExperimentResources.prepare(rt_dataset, config)
        assert resources.privacy_policy is None

    def test_existing_resources_are_kept(self, rt_dataset):
        item_hierarchy = build_item_hierarchy(rt_dataset.item_universe("Items"), fanout=3)
        resources = ExperimentResources.prepare(
            rt_dataset, transaction_config("apriori", k=3), item_hierarchy=item_hierarchy
        )
        assert resources.item_hierarchy is item_hierarchy

    def test_policy_regenerated_when_k_changes(self, rt_dataset):
        config = transaction_config("coat", k=4)
        resources = ExperimentResources.prepare(rt_dataset, config)
        first = resources.privacy_policy
        resources.ensure_for(rt_dataset, config.with_parameter("k", 8))
        assert resources.privacy_policy.k == 8
        assert resources.privacy_policy is not first

    def test_summary(self, rt_dataset):
        resources = ExperimentResources.prepare(rt_dataset, rt_config("cluster", "coat", k=3))
        summary = resources.summary()
        assert summary["item_hierarchy"] is True
        assert summary["workload_queries"] > 0


class TestAnonymizationModule:
    def test_builds_relational_algorithm(self, rt_dataset):
        config = relational_config("incognito", k=4)
        resources = ExperimentResources.prepare(rt_dataset, config)
        module = AnonymizationModule(rt_dataset, resources)
        assert isinstance(module.build_algorithm(config), Incognito)

    def test_builds_policy_based_transaction_algorithms(self, rt_dataset):
        resources = ExperimentResources.prepare(rt_dataset, transaction_config("coat", k=3))
        module = AnonymizationModule(rt_dataset, resources)
        assert isinstance(module.build_algorithm(transaction_config("coat", k=3)), Coat)
        resources.ensure_for(rt_dataset, transaction_config("pcta", k=3))
        assert isinstance(module.build_algorithm(transaction_config("pcta", k=3)), Pcta)

    def test_builds_rt_bounding(self, rt_dataset):
        config = rt_config("cluster", "apriori", bounding="rtmerger", k=3, m=1)
        resources = ExperimentResources.prepare(rt_dataset, config)
        module = AnonymizationModule(rt_dataset, resources)
        algorithm = module.build_algorithm(config)
        assert isinstance(algorithm, RTmerger)
        assert algorithm.k == 3

    def test_run_returns_result_with_label(self, rt_dataset):
        config = transaction_config("apriori", k=3, m=1, label="AA")
        resources = ExperimentResources.prepare(rt_dataset, config)
        module = AnonymizationModule(rt_dataset, resources)
        result = module.run(config)
        assert result.parameters["configuration"] == "AA"
        assert len(result.dataset) == len(rt_dataset)

    def test_unknown_transaction_algorithm_rejected(self, rt_dataset):
        resources = ExperimentResources.prepare(rt_dataset, transaction_config("apriori", k=3))
        module = AnonymizationModule(rt_dataset, resources)
        config = transaction_config("apriori", k=3)
        object.__setattr__(config, "transaction_algorithm", "bogus")
        with pytest.raises(ConfigurationError):
            module.build_transaction(config)
