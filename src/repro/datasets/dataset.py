"""The RT-dataset model used throughout the SECRETA reproduction.

A :class:`Dataset` is a table whose schema may mix relational (single-valued)
and transaction (set-valued) attributes — what the SECRETA paper calls an
*RT-dataset*.  Purely relational and purely transactional datasets are the two
degenerate cases of the same model, so a single class serves all nine
anonymization algorithms.

The model is deliberately row-oriented: anonymization algorithms group,
generalize and merge *records*, so records are first-class
(:class:`Record`), while column views are derived on demand.
"""

from __future__ import annotations

import copy as _copy
import hashlib
import re
from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.datasets.attributes import Attribute, AttributeKind, Schema
from repro.exceptions import DatasetError, SchemaError

#: The type of a single relational cell (categorical label or number).
RelationalValue = Any

#: The type of a transaction cell: an immutable set of item labels.
ItemSet = frozenset

#: Strings accepted in numeric columns even though they are not numbers:
#: generalized interval labels ("[20-40]"), group labels ("{a..b}"), the
#: generic root "*" and the suppression marker.  Anonymization coarsens a
#: numeric domain into such labels while the schema keeps calling the
#: attribute numeric (the original, truthful domain).
_GENERALIZED_NUMERIC = re.compile(
    r"^(\*|†|\[.+-.+\]|\{.+\})$"
)


class Record:
    """One row of an RT-dataset.

    Relational attribute values are stored as-is (strings or numbers);
    transaction attribute values are stored as ``frozenset`` of item labels.
    Records are owned by their dataset; mutate them through
    :class:`Dataset` / :class:`~repro.datasets.editor.DatasetEditor` so that
    schema consistency is preserved.
    """

    __slots__ = ("_values",)

    def __init__(self, values: Mapping[str, Any]):
        self._values: dict[str, Any] = dict(values)

    def __getitem__(self, name: str) -> Any:
        try:
            return self._values[name]
        except KeyError:
            raise SchemaError(f"record has no attribute {name!r}") from None

    def __contains__(self, name: object) -> bool:
        return name in self._values

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Record):
            return NotImplemented
        return self._values == other._values

    def __repr__(self) -> str:
        return f"Record({self._values!r})"

    def get(self, name: str, default: Any = None) -> Any:
        return self._values.get(name, default)

    def items(self) -> Iterable[tuple[str, Any]]:
        return self._values.items()

    def as_dict(self) -> dict[str, Any]:
        """A copy of the record's values keyed by attribute name."""
        return dict(self._values)

    def values_for(self, names: Sequence[str]) -> tuple:
        """The record's values for ``names``, in the given order."""
        return tuple(self._values[name] for name in names)

    # Internal mutators used by Dataset -------------------------------------
    def _set(self, name: str, value: Any) -> None:
        self._values[name] = value

    def _delete(self, name: str) -> None:
        self._values.pop(name, None)

    def _rename(self, old_name: str, new_name: str) -> None:
        if old_name in self._values:
            self._values[new_name] = self._values.pop(old_name)


def _normalise_cell(attribute: Attribute, value: Any) -> Any:
    """Coerce ``value`` to the storage form required by ``attribute``."""
    if attribute.is_transaction:
        if value is None:
            return frozenset()
        if isinstance(value, str):
            raise DatasetError(
                f"transaction attribute {attribute.name!r} expects an iterable "
                f"of items, got the string {value!r}; split it first"
            )
        return frozenset(str(item) for item in value)
    if attribute.is_numeric:
        if value is None or value == "":
            return None
        if isinstance(value, bool):
            raise DatasetError(
                f"numeric attribute {attribute.name!r} cannot store booleans"
            )
        if isinstance(value, (int, float)):
            return value
        try:
            as_float = float(value)
        except (TypeError, ValueError):
            if isinstance(value, str) and _GENERALIZED_NUMERIC.match(value.strip()):
                return value.strip()
            raise DatasetError(
                f"numeric attribute {attribute.name!r} cannot store {value!r}"
            ) from None
        return int(as_float) if as_float.is_integer() else as_float
    # Categorical: keep strings; generalized interval labels are strings too.
    if value is None:
        return None
    return str(value)


class Dataset:
    """An in-memory RT-dataset: a schema plus an ordered list of records."""

    def __init__(
        self,
        schema: Schema | Iterable[Attribute],
        records: Iterable[Mapping[str, Any]] = (),
        name: str = "dataset",
    ):
        self._schema = schema if isinstance(schema, Schema) else Schema(schema)
        self.name = name
        self._records: list[Record] = []
        #: attribute -> cached TransactionColumn; dropped on any mutation.
        self._columnar: dict[str, Any] = {}
        #: Monotonic mutation counter; every mutator bumps it, so cached
        #: derivations (the content fingerprint today, MVCC snapshots later)
        #: can tell whether they are still current.
        self._version = 0
        #: ``(version, digest)`` cache behind :meth:`fingerprint`.
        self._fingerprint: tuple[int, str] | None = None
        for row in records:
            self.append(row)

    # -- construction helpers ------------------------------------------------
    @classmethod
    def from_rows(
        cls,
        schema: Schema | Iterable[Attribute],
        rows: Iterable[Sequence[Any]],
        name: str = "dataset",
    ) -> "Dataset":
        """Build a dataset from positional rows aligned with the schema order."""
        schema = schema if isinstance(schema, Schema) else Schema(schema)
        names = schema.names
        dicts = []
        for row in rows:
            row = list(row)
            if len(row) != len(names):
                raise DatasetError(
                    f"row has {len(row)} values but schema has {len(names)} attributes"
                )
            dicts.append(dict(zip(names, row)))
        return cls(schema, dicts, name=name)

    # -- basic container protocol ---------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[Record]:
        return iter(self._records)

    def __getitem__(self, index: int) -> Record:
        return self._records[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Dataset):
            return NotImplemented
        return self._schema == other._schema and self._records == other._records

    def __repr__(self) -> str:
        return (
            f"Dataset(name={self.name!r}, records={len(self._records)}, "
            f"attributes={self._schema.names})"
        )

    # -- pickling -------------------------------------------------------------
    def __getstate__(self) -> dict:
        # Positional rows instead of per-Record reduction: a dataset pickles
        # roughly 6x faster at half the bytes, which keeps checkpoint-cell
        # writes and process-mode result transfer inside the durability
        # overhead budget.  Derived caches are dropped and rebuilt on demand.
        names = self._schema.names
        return {
            "schema": self._schema,
            "name": self.name,
            "version": self._version,
            "rows": [record.values_for(names) for record in self._records],
        }

    def __setstate__(self, state: dict) -> None:
        self._schema = state["schema"]
        self.name = state["name"]
        self._version = state["version"]
        self._columnar = {}
        self._fingerprint = None
        names = self._schema.names
        self._records = [
            Record(dict(zip(names, row))) for row in state["rows"]
        ]

    # -- accessors -------------------------------------------------------------
    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def records(self) -> list[Record]:
        """The dataset's records (the live list; treat as read-only)."""
        return self._records

    @property
    def is_empty(self) -> bool:
        return not self._records

    @property
    def is_rt_dataset(self) -> bool:
        """Whether the dataset mixes relational and transaction attributes."""
        return self._schema.is_rt_schema()

    @property
    def version(self) -> int:
        """Monotonic mutation counter (0 for a freshly built dataset)."""
        return self._version

    def fingerprint(self) -> str:
        """A cached content digest of the dataset, stable across processes.

        The digest covers the schema (names, kinds, quasi-identifier flags)
        and every cell, computed over the columnar views so it shares their
        cost model: ``int32`` code arrays plus the distinct cell values.
        Hash-randomised structures never leak in — transaction tokens are
        re-sorted within each record (their per-row order is ``frozenset``
        iteration order, which varies with ``PYTHONHASHSEED``) and distinct
        values are walked in code order, which is first-seen record order.
        The result is identical for a shared-memory view and its original,
        so checkpoint keys agree across execution modes.

        Any mutation bumps :attr:`version` and invalidates the cache; the
        digest is recomputed lazily on next use.
        """
        cached = self._fingerprint
        if cached is not None and cached[0] == self._version:
            return cached[1]
        digest = hashlib.blake2b(digest_size=20)
        digest.update(f"dataset-fingerprint:v1:{len(self._records)}".encode())
        for attribute in self._schema:
            digest.update(
                f"\x1e{attribute.name}\x1f{attribute.kind.value}"
                f"\x1f{int(attribute.quasi_identifier)}\x1f".encode()
            )
            if not self._records:
                continue
            column = self.columnar(attribute.name)
            if attribute.is_transaction:
                digest.update("\x1f".join(column.vocabulary.items).encode())
                indptr = np.ascontiguousarray(column.indptr, dtype=np.int64)
                digest.update(indptr.tobytes())
                tokens = np.ascontiguousarray(column.tokens, dtype=np.int64)
                counts = np.diff(indptr)
                record_ids = np.repeat(np.arange(len(counts)), counts)
                order = np.lexsort((tokens, record_ids))
                digest.update(tokens[order].tobytes())
            else:
                codes = np.ascontiguousarray(column.codes, dtype=np.int64)
                digest.update(codes.tobytes())
                for value in column.values:
                    digest.update(f"{type(value).__name__}:{value!r}\x1f".encode())
                string_codes, labels = column.string_codes()
                digest.update(np.ascontiguousarray(string_codes).tobytes())
                digest.update("\x1f".join(labels).encode())
        result = digest.hexdigest()
        self._fingerprint = (self._version, result)
        return result

    def column(self, name: str) -> list[Any]:
        """All values of attribute ``name``, in record order."""
        self._require_attribute(name)
        return [record[name] for record in self._records]

    def relational_tuple(self, index: int, names: Sequence[str] | None = None) -> tuple:
        """The relational quasi-identifier values of record ``index``."""
        names = list(names) if names is not None else self._schema.relational_names
        return self._records[index].values_for(names)

    def itemset(self, index: int, attribute: str | None = None) -> frozenset:
        """The transaction itemset of record ``index``.

        If ``attribute`` is omitted the dataset must have exactly one
        transaction attribute.
        """
        attribute = attribute or self.single_transaction_attribute()
        value = self._records[index][attribute]
        return value if isinstance(value, frozenset) else frozenset(value)

    def single_transaction_attribute(self) -> str:
        """The name of the dataset's only transaction attribute."""
        names = self._schema.transaction_names
        if len(names) != 1:
            raise SchemaError(
                f"expected exactly one transaction attribute, found {names}"
            )
        return names[0]

    def item_universe(self, attribute: str | None = None) -> set[str]:
        """The set of all items appearing in a transaction attribute.

        When a columnar view of the attribute has been built (see
        :meth:`columnar`) its vocabulary is reused instead of re-scanning
        every record.
        """
        attribute = attribute or self.single_transaction_attribute()
        self._require_attribute(attribute)
        column = self._columnar.get(attribute)
        if column is not None:
            return column.vocabulary.universe()
        universe: set[str] = set()
        for record in self._records:
            universe.update(record[attribute])
        return universe

    def columnar(self, attribute: str | None = None):
        """The cached columnar view of one attribute.

        Transaction attributes yield a
        :class:`~repro.columnar.column.TransactionColumn` (CSR tokens +
        posting bitsets); numeric and categorical relational attributes yield
        a :class:`~repro.columnar.relational.NumericColumn` /
        :class:`~repro.columnar.relational.CategoricalColumn` (one ``int32``
        code per record over the distinct cell values).  Each view is built
        on first use and invalidated by any dataset mutation; the inverted
        index, the metrics and the clustering/merge kernels run on it.  With
        no ``attribute`` the dataset's single transaction attribute is used.
        """
        from repro.columnar import CategoricalColumn, NumericColumn, TransactionColumn

        attribute = attribute or self.single_transaction_attribute()
        self._require_attribute(attribute)
        column = self._columnar.get(attribute)
        if column is None:
            spec = self._schema[attribute]
            if spec.is_transaction:
                column = TransactionColumn.from_dataset(self, attribute)
            elif spec.is_numeric:
                column = NumericColumn.from_dataset(self, attribute)
            else:
                column = CategoricalColumn.from_dataset(self, attribute)
            self._columnar[attribute] = column
        return column

    def domain(self, name: str) -> list[Any]:
        """Sorted distinct values of a relational attribute."""
        self._require_attribute(name)
        attribute = self._schema[name]
        if attribute.is_transaction:
            return sorted(self.item_universe(name))
        values = {record[name] for record in self._records if record[name] is not None}
        try:
            return sorted(values)
        except TypeError:
            return sorted(values, key=str)

    def group_by(self, names: Sequence[str]) -> dict[tuple, list[int]]:
        """Group record indices by their values on ``names``.

        This is the equivalence-class view used by the k-anonymity checks and
        by several algorithms.
        """
        for name in names:
            self._require_attribute(name)
        groups: dict[tuple, list[int]] = {}
        for index, record in enumerate(self._records):
            key = record.values_for(names)
            groups.setdefault(key, []).append(index)
        return groups

    # -- mutation ---------------------------------------------------------------
    def append(self, values: Mapping[str, Any]) -> None:
        """Append a record given as a mapping from attribute name to value."""
        unknown = set(values) - set(self._schema.names)
        if unknown:
            raise SchemaError(f"unknown attributes in record: {sorted(unknown)}")
        normalised: dict[str, Any] = {}
        for attribute in self._schema:
            raw = values.get(attribute.name)
            normalised[attribute.name] = _normalise_cell(attribute, raw)
        self._records.append(Record(normalised))
        self._columnar.clear()
        self._version += 1

    def remove_record(self, index: int) -> None:
        try:
            del self._records[index]
        except IndexError:
            raise DatasetError(f"no record at index {index}") from None
        self._columnar.clear()
        self._version += 1

    def set_value(self, index: int, name: str, value: Any) -> None:
        """Set attribute ``name`` of record ``index`` to ``value``."""
        self._require_attribute(name)
        try:
            record = self._records[index]
        except IndexError:
            raise DatasetError(f"no record at index {index}") from None
        record._set(name, _normalise_cell(self._schema[name], value))
        self._columnar.pop(name, None)
        self._version += 1

    def add_attribute(
        self,
        attribute: Attribute,
        values: Sequence[Any] | None = None,
        default: Any = None,
    ) -> None:
        """Add a column, filling it from ``values`` or with ``default``."""
        if attribute.name in self._schema:
            raise SchemaError(f"attribute {attribute.name!r} already exists")
        if values is not None and len(values) != len(self._records):
            raise DatasetError(
                f"got {len(values)} values for {len(self._records)} records"
            )
        self._schema = self._schema.with_attribute(attribute)
        for position, record in enumerate(self._records):
            raw = values[position] if values is not None else default
            record._set(attribute.name, _normalise_cell(attribute, raw))
        self._columnar.pop(attribute.name, None)
        self._version += 1

    def remove_attribute(self, name: str) -> None:
        """Drop a column from the schema and every record."""
        self._schema = self._schema.without_attribute(name)
        for record in self._records:
            record._delete(name)
        self._columnar.pop(name, None)
        self._version += 1

    def rename_attribute(self, old_name: str, new_name: str) -> None:
        """Rename a column in the schema and every record."""
        self._schema = self._schema.renamed(old_name, new_name)
        for record in self._records:
            record._rename(old_name, new_name)
        self._columnar.pop(old_name, None)
        self._columnar.pop(new_name, None)
        self._version += 1

    # -- transformation -----------------------------------------------------------
    def copy(self, name: str | None = None) -> "Dataset":
        """An independent copy: fresh ``Record`` containers over shared cell values.

        Mutating the copy (or the original) never affects the other; the cell
        values themselves are safe to share because they are immutable
        (strings, numbers, ``frozenset`` itemsets).
        """
        clone = Dataset(self._schema, name=name or self.name)
        clone._records = [Record(record.as_dict()) for record in self._records]
        return clone

    def project(self, names: Sequence[str], name: str | None = None) -> "Dataset":
        """A new dataset containing only the attributes in ``names``."""
        attributes = [self._schema[n] for n in names]
        projected = Dataset(Schema(attributes), name=name or f"{self.name}[projected]")
        for record in self._records:
            projected.append({n: record[n] for n in names})
        return projected

    def select(
        self, predicate: Callable[[Record], bool], name: str | None = None
    ) -> "Dataset":
        """A new dataset containing the records for which ``predicate`` holds."""
        selected = Dataset(self._schema, name=name or f"{self.name}[selected]")
        selected._records = [
            Record(record.as_dict()) for record in self._records if predicate(record)
        ]
        return selected

    def subset(self, indices: Sequence[int], name: str | None = None) -> "Dataset":
        """A new dataset containing the records at ``indices`` (in that order)."""
        selected = Dataset(self._schema, name=name or f"{self.name}[subset]")
        try:
            selected._records = [
                Record(self._records[i].as_dict()) for i in indices
            ]
        except IndexError:
            raise DatasetError("subset index out of range") from None
        return selected

    def map_column(self, name: str, transform: Callable[[Any], Any]) -> None:
        """Apply ``transform`` to every value of attribute ``name`` in place."""
        self._require_attribute(name)
        attribute = self._schema[name]
        for record in self._records:
            record._set(name, _normalise_cell(attribute, transform(record[name])))
        self._columnar.pop(name, None)
        self._version += 1

    def to_rows(self) -> list[list[Any]]:
        """Positional rows aligned with the schema order (deep copies)."""
        names = self._schema.names
        return [
            [_copy.copy(record[name]) for name in names] for record in self._records
        ]

    # -- internal helpers -----------------------------------------------------------
    def _require_attribute(self, name: str) -> None:
        if name not in self._schema:
            raise SchemaError(f"unknown attribute {name!r}")
