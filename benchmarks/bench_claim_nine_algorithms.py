"""CLAIM-9ALG — "SECRETA supports 9 algorithms" (Section 2.2).

Every one of the nine integrated algorithms is executed on its applicable
dataset type with the same privacy level; runtime and information loss are
recorded so EXPERIMENTS.md can report a per-algorithm row (the per-algorithm
efficiency/utility table the Comparison mode summarises graphically).
"""

from __future__ import annotations

import pytest

from repro.engine import (
    MethodEvaluator,
    relational_config,
    transaction_config,
)

RELATIONAL = ["incognito", "top-down", "cluster", "full-subtree"]
TRANSACTION = ["coat", "pcta", "apriori", "lra", "vpa"]

_collected: dict[str, dict] = {}


@pytest.mark.parametrize("algorithm", RELATIONAL)
def test_relational_algorithm(benchmark, session, algorithm, record):
    evaluator = MethodEvaluator(session.dataset, session.resources(), verify_privacy=False)
    config = relational_config(algorithm, k=10, label=algorithm)

    report = benchmark.pedantic(evaluator.evaluate, args=(config,), rounds=1, iterations=1)
    _collected[algorithm] = {
        "kind": "relational",
        "runtime_seconds": report.runtime_seconds,
        "are": report.are,
        "gcp": report.utility["relational_gcp"],
        "min_class_size": report.privacy["min_class_size"],
    }
    record("claim_nine_algorithms", _collected)
    assert report.privacy["min_class_size"] >= 10


@pytest.mark.parametrize("algorithm", TRANSACTION)
def test_transaction_algorithm(benchmark, session, algorithm, record):
    evaluator = MethodEvaluator(session.dataset, session.resources(), verify_privacy=False)
    # COAT/PCTA protect explicit constraints; use 2-itemset constraints so the
    # policy actually has violations to repair (single items are already
    # frequent enough at this dataset size).
    config = transaction_config(
        algorithm, k=10, m=2, label=algorithm, privacy_strategy="itemsets"
    )

    report = benchmark.pedantic(evaluator.evaluate, args=(config,), rounds=1, iterations=1)
    _collected[algorithm] = {
        "kind": "transaction",
        "runtime_seconds": report.runtime_seconds,
        "are": report.are,
        "utility_loss": report.utility["transaction_ul"],
        "item_frequency_error": report.utility["item_frequency_error"],
    }
    record("claim_nine_algorithms", _collected)
    assert 0.0 <= report.utility["transaction_ul"] <= 1.0
