"""RT-dataset anonymization: bounding methods and algorithm combinations."""

from __future__ import annotations

from repro.algorithms.rt.bounding import (
    RtBoundingAnonymizer,
    Rmerger,
    RTmerger,
    Tmerger,
)
from repro.algorithms.rt.combinations import (
    RtCombination,
    algorithm_pairs,
    combination_count,
    iter_combinations,
)

__all__ = [
    "RtBoundingAnonymizer",
    "Rmerger",
    "RTmerger",
    "Tmerger",
    "RtCombination",
    "algorithm_pairs",
    "combination_count",
    "iter_combinations",
]
