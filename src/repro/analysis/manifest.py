"""The invariant manifest: the data half of the project-specific rules.

The REP0xx rules are generic checkers; what counts as a *sanctioned*
mutation site, a *hot* module, a *declared* kernel/fallback pair or an
*allow-listed* defensive handler is project knowledge.  That knowledge lives
in one committed TOML file (``invariants.toml`` next to this module) so the
catalogue is reviewable data, not code — adding a kernel means adding a
manifest entry, and REP003 fails when the entry goes stale.

All path references in the manifest are root-relative POSIX paths, with
symbols attached as ``path/to/file.py::Qualified.name``.
"""

from __future__ import annotations

import tomllib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from repro.exceptions import AnalysisError

#: The manifest shipped with (and describing) this repository.
DEFAULT_MANIFEST_PATH = Path(__file__).with_name("invariants.toml")


@dataclass(frozen=True)
class ParityPair:
    """One REP003 declaration: a vectorized kernel and its scalar reference."""

    kernel: str
    fallback: str
    note: str = ""


@dataclass(frozen=True)
class DtypeContract:
    """One REP011 declaration: a kernel parameter and its required dtype.

    ``function`` is a ``path/to/file.py::Qualified.name`` reference; ``param``
    names the parameter; ``dtype`` is the canonical numpy dtype name the
    argument must carry (``uint64``, ``int64``, ...).
    """

    function: str
    param: str
    dtype: str


@dataclass(frozen=True)
class WorkerCall:
    """One REP006 declaration: a callable that ships a worker to a pool.

    ``arg`` is the positional index of the worker argument.  ``process_only``
    marks callables that always pickle the worker (``fan_out_shared``,
    ``pool.map``); for the others (``run_many``) a lambda is only unsafe when
    the call requests process mode explicitly or dynamically.
    """

    arg: int
    process_only: bool = True


@dataclass(frozen=True)
class InvariantManifest:
    """Typed view of ``invariants.toml`` (every section optional)."""

    #: REP001: names of helper callables that encapsulate close+unlink.
    cleanup_helpers: tuple[str, ...] = ()
    #: REP002: dataset-state attribute names whose mutation must invalidate
    #: the columnar cache, the Record mutator method names, and the modules
    #: allowed to touch either.
    protected_attributes: tuple[str, ...] = ()
    record_mutators: tuple[str, ...] = ()
    sanctioned_modules: tuple[str, ...] = ()
    #: REP003: modules whose public module-level functions must all appear as
    #: kernels in ``parity_pairs``.
    kernel_modules: tuple[str, ...] = ()
    parity_pairs: tuple[ParityPair, ...] = ()
    #: REP004: modules declared hot (no per-record Python loops) and the
    #: qualified functions exempted as scalar fallbacks.
    hot_modules: tuple[str, ...] = ()
    scalar_fallbacks: tuple[str, ...] = ()
    #: REP005: path prefixes the exception discipline applies to, plus
    #: ``path::qualname`` sites allow-listed as defensive cleanup.
    exception_scope: tuple[str, ...] = ()
    allowed_handlers: tuple[str, ...] = ()
    #: REP006: classes shipped through the worker pool, field types they must
    #: not carry, and worker-accepting callables checked for lambdas.
    spec_classes: tuple[str, ...] = ()
    forbidden_field_types: tuple[str, ...] = ()
    #: ``callable name -> worker-argument declaration`` for REP006.
    worker_calls: Mapping[str, WorkerCall] = field(default_factory=dict)
    #: REP007: path prefixes the retry discipline applies to, the call names
    #: that count as (re)submission, and the ``path::qualname`` helpers whose
    #: policy-bounded sleeps are sanctioned.
    retry_scope: tuple[str, ...] = ()
    resubmit_calls: tuple[str, ...] = ()
    sleep_helpers: tuple[str, ...] = ()
    #: REP008: path prefixes the durability discipline applies to, plus the
    #: ``path::qualname`` helpers sanctioned to perform raw writes (the
    #: atomic write-temp-fsync-rename implementation itself).
    durability_scope: tuple[str, ...] = ()
    atomic_helpers: tuple[str, ...] = ()
    #: REP009: path prefixes the interprocedural resource-escape analysis
    #: reports in, call names that acquire a leakable resource beyond the
    #: built-in ``SharedMemory(create=True)`` detection, and names that count
    #: as cleanup sinks (method- or callable-style).
    resource_scope: tuple[str, ...] = ()
    rep009_acquisition_calls: tuple[str, ...] = ()
    rep009_cleanup_sinks: tuple[str, ...] = ()
    #: REP010: path prefixes the stale-snapshot dataflow reports in, call
    #: names that produce snapshot-derived values, and method names whose
    #: invocation invalidates snapshots of the same receiver.
    snapshot_scope: tuple[str, ...] = ()
    rep010_snapshot_sources: tuple[str, ...] = ()
    rep010_mutators: tuple[str, ...] = ()
    #: REP011: declared kernel dtype contracts, checked at every analyzed
    #: call site whose argument construction is statically evident.
    dtype_contracts: tuple[DtypeContract, ...] = ()

    @classmethod
    def load(cls, path: Path | str | None = None) -> "InvariantManifest":
        """Load a manifest file (default: the repository's own)."""
        manifest_path = Path(path) if path is not None else DEFAULT_MANIFEST_PATH
        try:
            raw = tomllib.loads(manifest_path.read_text())
        except OSError as error:
            raise AnalysisError(
                f"cannot read invariant manifest {manifest_path}: {error}"
            ) from error
        except tomllib.TOMLDecodeError as error:
            raise AnalysisError(
                f"invariant manifest {manifest_path} is not valid TOML: {error}"
            ) from error
        return cls.from_mapping(raw, source=str(manifest_path))

    @classmethod
    def from_mapping(
        cls, raw: Mapping[str, Any], source: str = "<mapping>"
    ) -> "InvariantManifest":
        def strings(section: str, key: str) -> tuple[str, ...]:
            values = raw.get(section, {}).get(key, ())
            if not all(isinstance(value, str) for value in values):
                raise AnalysisError(
                    f"{source}: [{section}] {key} must be a list of strings"
                )
            return tuple(values)

        pairs: list[ParityPair] = []
        for entry in raw.get("rep003", {}).get("pairs", ()):
            kernel = entry.get("kernel")
            fallback = entry.get("fallback")
            if not kernel or not fallback:
                raise AnalysisError(
                    f"{source}: every [[rep003.pairs]] entry needs a "
                    f"'kernel' and a 'fallback' reference"
                )
            pairs.append(
                ParityPair(
                    kernel=kernel, fallback=fallback, note=entry.get("note", "")
                )
            )

        contracts: list[DtypeContract] = []
        for entry in raw.get("rep011", {}).get("contracts", ()):
            function = entry.get("function")
            param = entry.get("param")
            dtype = entry.get("dtype")
            if not function or not param or not dtype:
                raise AnalysisError(
                    f"{source}: every [[rep011.contracts]] entry needs "
                    f"'function', 'param' and 'dtype'"
                )
            contracts.append(
                DtypeContract(function=function, param=param, dtype=dtype)
            )

        worker_calls_raw = raw.get("rep006", {}).get("worker_calls", {})
        worker_calls: dict[str, WorkerCall] = {}
        for name, entry in worker_calls_raw.items():
            if not isinstance(entry, Mapping) or not isinstance(
                entry.get("arg"), int
            ) or entry["arg"] < 0:
                raise AnalysisError(
                    f"{source}: [rep006] worker_calls[{name!r}] must be a "
                    f"table with a non-negative 'arg' index"
                )
            worker_calls[name] = WorkerCall(
                arg=entry["arg"],
                process_only=bool(entry.get("process_only", True)),
            )

        return cls(
            cleanup_helpers=strings("rep001", "cleanup_helpers"),
            protected_attributes=strings("rep002", "protected_attributes"),
            record_mutators=strings("rep002", "record_mutators"),
            sanctioned_modules=strings("rep002", "sanctioned_modules"),
            kernel_modules=strings("rep003", "kernel_modules"),
            parity_pairs=tuple(pairs),
            hot_modules=strings("rep004", "hot_modules"),
            scalar_fallbacks=strings("rep004", "scalar_fallbacks"),
            exception_scope=strings("rep005", "scope"),
            allowed_handlers=strings("rep005", "allowed_handlers"),
            spec_classes=strings("rep006", "spec_classes"),
            forbidden_field_types=strings("rep006", "forbidden_field_types"),
            worker_calls=worker_calls,
            retry_scope=strings("rep007", "scope"),
            resubmit_calls=strings("rep007", "resubmit_calls"),
            sleep_helpers=strings("rep007", "sleep_helpers"),
            durability_scope=strings("rep008", "scope"),
            atomic_helpers=strings("rep008", "atomic_helpers"),
            resource_scope=strings("rep009", "scope"),
            rep009_acquisition_calls=strings("rep009", "acquisition_calls"),
            rep009_cleanup_sinks=strings("rep009", "cleanup_sinks"),
            snapshot_scope=strings("rep010", "scope"),
            rep010_snapshot_sources=strings("rep010", "snapshot_sources"),
            rep010_mutators=strings("rep010", "mutators"),
            dtype_contracts=tuple(contracts),
        )
