"""Privacy and utility policies for constraint-based anonymization."""

from __future__ import annotations

from repro.policies.generation import (
    generate_policies,
    generate_privacy_policy,
    generate_utility_policy,
    policy_summary,
)
from repro.policies.io import (
    load_privacy_policy,
    load_utility_policy,
    read_privacy_policy_text,
    read_utility_policy_text,
    save_privacy_policy,
    save_utility_policy,
    write_privacy_policy_text,
    write_utility_policy_text,
)
from repro.policies.privacy import PrivacyConstraint, PrivacyPolicy
from repro.policies.utility import UtilityConstraint, UtilityPolicy, generalized_label

__all__ = [
    "PrivacyConstraint",
    "PrivacyPolicy",
    "UtilityConstraint",
    "UtilityPolicy",
    "generalized_label",
    "generate_policies",
    "generate_privacy_policy",
    "generate_utility_policy",
    "policy_summary",
    "load_privacy_policy",
    "load_utility_policy",
    "read_privacy_policy_text",
    "read_utility_policy_text",
    "save_privacy_policy",
    "save_utility_policy",
    "write_privacy_policy_text",
    "write_utility_policy_text",
]
