"""Tests for the RT bounding methods and algorithm combinations."""

import pytest

from repro.algorithms import (
    AprioriAnonymizer,
    ClusterAnonymizer,
    Coat,
    Incognito,
    Rmerger,
    RTmerger,
    Tmerger,
    algorithm_pairs,
    bounding_methods,
    combination_count,
    get_spec,
    iter_combinations,
    relational_algorithms,
    transaction_algorithms,
)
from repro.datasets import generate_rt_dataset
from repro.exceptions import ConfigurationError
from repro.hierarchy import build_hierarchies_for_dataset, build_item_hierarchy
from repro.metrics import is_k_km_anonymous
from repro.policies import generate_policies

K, M = 4, 2


@pytest.fixture(scope="module")
def rt():
    return generate_rt_dataset(n_records=120, n_items=18, seed=41)


@pytest.fixture(scope="module")
def hierarchies(rt):
    relational = [a.name for a in rt.schema.relational if a.quasi_identifier]
    return build_hierarchies_for_dataset(rt, fanout=3, attributes=relational)


@pytest.fixture(scope="module")
def item_hierarchy(rt):
    return build_item_hierarchy(rt.item_universe("Items"), fanout=3)


class TestRegistry:
    def test_nine_algorithms_and_three_boundings(self):
        assert len(relational_algorithms()) == 4
        assert len(transaction_algorithms()) == 5
        assert len(bounding_methods()) == 3

    def test_twenty_combinations(self):
        assert len(algorithm_pairs()) == 20
        assert combination_count() == 20
        assert combination_count(include_boundings=True) == 60
        assert len(iter_combinations("rtmerger")) == 20

    def test_combination_labels(self):
        combination = iter_combinations("tmerger")[0]
        assert combination.bounding == "tmerger"
        assert "+" in combination.label and "/" in combination.label

    def test_get_spec_known_and_unknown(self):
        assert get_spec("coat").uses_policies
        assert get_spec("incognito").kind == "relational"
        with pytest.raises(ConfigurationError):
            get_spec("does-not-exist")


class TestBoundingMethods:
    @pytest.mark.parametrize("bounding_class", [Rmerger, Tmerger, RTmerger])
    def test_output_is_k_km_anonymous(self, bounding_class, rt, hierarchies, item_hierarchy):
        algorithm = bounding_class(
            k=K, m=M, delta=0.6, hierarchies=hierarchies, item_hierarchy=item_hierarchy
        )
        result = algorithm.anonymize(rt)
        assert len(result.dataset) == len(rt)
        assert is_k_km_anonymous(
            result.dataset,
            k=K,
            m=M,
            hierarchy=item_hierarchy,
            universe=rt.item_universe("Items"),
        )

    @pytest.mark.parametrize("bounding_class", [Rmerger, Tmerger, RTmerger])
    def test_reports_both_utility_sides(self, bounding_class, rt, hierarchies, item_hierarchy):
        result = bounding_class(
            k=K, m=M, delta=0.6, hierarchies=hierarchies, item_hierarchy=item_hierarchy
        ).anonymize(rt)
        assert 0.0 <= result.statistics["relational_gcp"] <= 1.0
        assert 0.0 <= result.statistics["transaction_ul"] <= 1.0
        assert result.statistics["final_clusters"] <= result.statistics["initial_clusters"]

    def test_delta_zero_forces_more_merging_than_delta_one(self, rt, hierarchies, item_hierarchy):
        eager = Tmerger(
            k=K, m=M, delta=0.0, hierarchies=hierarchies, item_hierarchy=item_hierarchy
        ).anonymize(rt)
        lazy = Tmerger(
            k=K, m=M, delta=1.0, hierarchies=hierarchies, item_hierarchy=item_hierarchy
        ).anonymize(rt)
        assert eager.statistics["merges"] >= lazy.statistics["merges"]
        assert lazy.statistics["merges"] == 0

    def test_parameter_validation(self, hierarchies, item_hierarchy):
        with pytest.raises(ConfigurationError):
            Rmerger(k=3, m=2, delta=1.5)
        with pytest.raises(ConfigurationError):
            Rmerger(k=3, m=0)

    def test_with_incognito_clusters(self, rt, hierarchies, item_hierarchy):
        relational = Incognito(K, hierarchies)
        algorithm = RTmerger(
            k=K,
            m=M,
            delta=0.8,
            relational_algorithm=relational,
            hierarchies=hierarchies,
            item_hierarchy=item_hierarchy,
        )
        result = algorithm.anonymize(rt)
        assert is_k_km_anonymous(
            result.dataset, k=K, m=M, hierarchy=item_hierarchy,
            universe=rt.item_universe("Items"),
        )
        assert result.parameters["relational_algorithm"] == "incognito"

    def test_with_coat_transaction_factory(self, rt, hierarchies):
        privacy, utility = generate_policies(rt, k=K, attribute="Items", group_size=4)

        def factory(subset):
            return Coat(privacy, utility)

        algorithm = Rmerger(
            k=K,
            m=M,
            delta=1.0,
            relational_algorithm=ClusterAnonymizer(K, hierarchies),
            transaction_factory=factory,
            hierarchies=hierarchies,
        )
        result = algorithm.anonymize(rt)
        assert len(result.dataset) == len(rt)
        # Relational side must still be k-anonymous.
        relational = [a.name for a in rt.schema.relational if a.quasi_identifier]
        groups = result.dataset.group_by(relational)
        assert min(len(indices) for indices in groups.values()) >= K

    def test_default_transaction_factory_is_apriori(self, rt, hierarchies, item_hierarchy):
        algorithm = RTmerger(
            k=K, m=M, delta=0.7, hierarchies=hierarchies, item_hierarchy=item_hierarchy
        )
        factory = algorithm._default_transaction_factory()
        assert isinstance(factory(rt), AprioriAnonymizer)
