"""REP007: retry-discipline fixtures."""

from __future__ import annotations

from lint_harness import new_codes

from repro.analysis.core import rule_by_code
from repro.analysis.manifest import InvariantManifest

MANIFEST = InvariantManifest(
    retry_scope=("src/pkg/engine",),
    resubmit_calls=("submit", "execute_tasks"),
    sleep_helpers=("src/pkg/engine/backoff.py::_sleep_backoff",),
)

UNBOUNDED_RETRY = """
    def keep_trying(pool, task):
        while True:
            future = pool.submit(task)
            if future.done():
                return future.result()
"""

BOUNDED_RETRY = """
    def bounded(pool, task, policy):
        for attempt in range(policy.max_attempts):
            future = pool.submit(task)
            if future.done():
                return future.result()
        raise TaskError("attempt budget exhausted")
"""

WHILE_PENDING = """
    def drain(pool, pending):
        while pending:
            state = pending.pop()
            pool.submit(state.task)
"""

WHILE_TRUE_WITHOUT_SUBMIT = """
    def poll(queue):
        while True:
            item = queue.get()
            if item is None:
                return
"""

NESTED_DEF_DOES_NOT_LEAK = """
    def outer(pool):
        while True:
            def later(task):
                return pool.submit(task)
            if ready():
                return later
"""

BARE_SLEEP = """
    import time

    def settle(pool, task):
        pool.submit(task)
        time.sleep(1.0)
"""

SANCTIONED_SLEEP = """
    import time

    def _sleep_backoff(policy, task_index, attempt):
        delay = policy.backoff_delay(task_index, attempt)
        if delay > 0.0:
            time.sleep(delay)
"""


class TestRep007:
    def test_while_true_submit_loop_is_flagged(self, harness):
        findings = harness.findings(
            "src/pkg/engine/loop.py",
            UNBOUNDED_RETRY,
            manifest=MANIFEST,
            select=["REP007"],
        )
        assert new_codes(findings) == ["REP007"]
        assert "submit" in findings[0].message

    def test_attempt_bounded_loop_is_clean(self, harness):
        assert (
            harness.findings(
                "src/pkg/engine/loop.py",
                BOUNDED_RETRY,
                manifest=MANIFEST,
                select=["REP007"],
            )
            == []
        )

    def test_while_pending_drain_is_clean(self, harness):
        assert (
            harness.findings(
                "src/pkg/engine/loop.py",
                WHILE_PENDING,
                manifest=MANIFEST,
                select=["REP007"],
            )
            == []
        )

    def test_while_true_without_submission_is_clean(self, harness):
        assert (
            harness.findings(
                "src/pkg/engine/loop.py",
                WHILE_TRUE_WITHOUT_SUBMIT,
                manifest=MANIFEST,
                select=["REP007"],
            )
            == []
        )

    def test_submit_inside_nested_def_is_not_charged_to_the_loop(self, harness):
        assert (
            harness.findings(
                "src/pkg/engine/loop.py",
                NESTED_DEF_DOES_NOT_LEAK,
                manifest=MANIFEST,
                select=["REP007"],
            )
            == []
        )

    def test_bare_sleep_is_flagged(self, harness):
        findings = harness.findings(
            "src/pkg/engine/settle.py",
            BARE_SLEEP,
            manifest=MANIFEST,
            select=["REP007"],
        )
        assert new_codes(findings) == ["REP007"]
        assert "sleep" in findings[0].message

    def test_sleep_inside_the_sanctioned_helper_is_clean(self, harness):
        assert (
            harness.findings(
                "src/pkg/engine/backoff.py",
                SANCTIONED_SLEEP,
                manifest=MANIFEST,
                select=["REP007"],
            )
            == []
        )

    def test_out_of_scope_module_is_ignored(self, harness):
        assert (
            harness.findings(
                "tools/retry_forever.py",
                UNBOUNDED_RETRY,
                manifest=MANIFEST,
                select=["REP007"],
            )
            == []
        )

    def test_inline_allow_with_reason_suppresses(self, harness):
        source = BARE_SLEEP.replace(
            "time.sleep(1.0)",
            "time.sleep(1.0)  "
            "# repro: allow[REP007] -- fixture: the sleep is the behaviour under test",
        )
        findings = harness.findings(
            "src/pkg/engine/settle.py", source, manifest=MANIFEST, select=["REP007"]
        )
        assert new_codes(findings) == []

    def test_explain_text_exists(self):
        rule = rule_by_code("REP007")
        assert rule is not None
        assert rule.name == "retry-discipline"
        assert "ExecutionPolicy" in rule.explanation
