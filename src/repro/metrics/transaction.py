"""Information-loss metrics for transaction (set-valued) attributes.

The measures mirror the evaluation of the transaction-anonymization papers
SECRETA integrates:

* **Utility Loss (UL)** — every generalized item is charged by the fraction of
  the item universe it may stand for, and every suppressed item by 1; the
  charges are summed over all records and normalised by the total number of
  items in the original data.  0 means intact, 1 means everything was
  suppressed or generalized to the root.
* **Suppression ratio** — fraction of original item occurrences that no longer
  appear (not even under a generalized item) in the anonymized data.
* **Item frequency error** — the average relative error of per-item supports
  estimated from the anonymized data (the series plotted in the Evaluation
  screen, Figure 3(d)).

All measures run on the shared interpretation index
(:mod:`repro.index`): label resolution and the per-label aggregates are
memoized per (hierarchy, universe) pair instead of being re-derived per
record per label.  The per-record accumulation itself runs on the columnar
layer (:mod:`repro.columnar`): charges are resolved once per *distinct
anonymized label* into a ``(label, original item)`` charge matrix, and the
per-occurrence "cheapest covering label" reduction becomes one vectorized
``minimum.reduceat`` over record-wise (occurrence, label) pairs.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.dataset import Dataset
from repro.datasets.statistics import value_frequencies
from repro.exceptions import DatasetError
from repro.hierarchy.hierarchy import Hierarchy
from repro.index import LabelInterpreter, generalization_cost, interpreter_for
from repro.metrics.interpretation import label_leaves

#: Guards for the vectorized metric path.  The dense (anonymized label ×
#: original item) charge matrix and the expanded (occurrence, label) pair
#: arrays are linear-memory wins for every realistic output, but adversarial
#: shapes (a vocabulary of millions, records holding thousands of labels)
#: could blow them up — past these bounds the metrics fall back to the exact
#: per-record interpreter loop.
_MAX_CHARGE_MATRIX_CELLS = 8_000_000
_MAX_OCCURRENCE_PAIRS = 16_000_000


def _require_universe(interpreter: LabelInterpreter) -> None:
    """Reject interpreters built without an item universe.

    A universe-less interpreter resolves the root to nothing and charges every
    label 0, silently understating loss — the failure mode the root-label
    bugfix removed.  Fail loudly instead.
    """
    if interpreter.universe is None:
        raise DatasetError(
            "the supplied interpreter was built without an item universe; "
            "use interpreter_for(hierarchy, original.item_universe(attribute))"
        )


def item_generalization_cost(
    label: str,
    universe_size: int,
    hierarchy: Hierarchy | None = None,
    universe: set[str] | None = None,
) -> float:
    """Cost of publishing ``label`` instead of an original item.

    An original item costs 0, a generalized item ``(a,b,c)`` costs
    ``(3 - 1) / (|I| - 1)``, and the root (all items) costs 1.  The root
    label ``*`` can only be resolved through a ``hierarchy`` or the item
    ``universe``; on the hierarchy-free COAT/PCTA path callers must pass
    ``universe`` or the root resolves to nothing and is charged 0 (the
    pre-fix behavior, kept only for the legacy no-universe signature).
    """
    size = len(label_leaves(str(label), hierarchy, universe=universe))
    return generalization_cost(size, universe_size)


def _occurrence_charge_sum(
    original: Dataset,
    anonymized: Dataset,
    attribute: str,
    charge_for_label,
) -> tuple[float, int] | None:
    """Sum, over original item occurrences, the cheapest covering-label charge.

    ``charge_for_label(label)`` maps one distinct anonymized label to
    ``(covered original items, charge)``.  An occurrence of original item
    ``i`` in record ``r`` is charged ``min(1, min over labels of r covering
    i)`` — 1 when no label covers it.  The reduction is vectorized: a dense
    ``(anonymized label, original item)`` charge matrix (uncovered = +inf), a
    record-wise (occurrence, label) pair expansion, and one
    ``minimum.reduceat`` per-occurrence segment reduction.

    Returns ``(sum, occurrences)``, or ``None`` when the matrix/pair guards
    trip and the caller must take its exact per-record fallback.
    """
    source = original.columnar(attribute)
    total_items = source.total_items
    if total_items == 0:
        return 0.0, 0
    target = anonymized.columnar(attribute)
    label_vocabulary = target.vocabulary
    item_vocabulary = source.vocabulary
    if len(label_vocabulary) * max(len(item_vocabulary), 1) > _MAX_CHARGE_MATRIX_CELLS:
        return None
    if int((source.row_lengths() * target.row_lengths()).sum()) > _MAX_OCCURRENCE_PAIRS:
        return None

    matrix = np.full((len(label_vocabulary), len(item_vocabulary)), np.inf)
    for token, label in enumerate(label_vocabulary.items):
        covered, charge = charge_for_label(label)
        tokens = item_vocabulary.tokens_for(covered)
        if tokens.size:
            matrix[token, tokens] = charge

    # The (occurrence, label) pair expansion is a pure function of the two
    # CSR layouts; the join is cached on the anonymized column.  Occurrences
    # whose record lost every label are uncovered: charge 1 each.
    flat, segment_starts, unpaired = target.occurrence_join(source)
    value = float(unpaired)
    if flat.size:
        cheapest = np.minimum.reduceat(matrix.ravel()[flat], segment_starts)
        value += float(np.minimum(cheapest, 1.0).sum())
    return value, total_items


def utility_loss(
    original: Dataset,
    anonymized: Dataset,
    attribute: str | None = None,
    hierarchy: Hierarchy | None = None,
    interpreter: LabelInterpreter | None = None,
) -> float:
    """UL of an anonymized transaction attribute (0 intact .. 1 destroyed).

    ``interpreter`` may be supplied to share one label cache across many
    metric calls; it must have been built for ``hierarchy`` and the original
    dataset's item universe (as :func:`repro.index.interpreter_for` does).
    """
    attribute = attribute or original.single_transaction_attribute()
    if len(original) != len(anonymized):
        raise DatasetError(
            "utility_loss expects aligned datasets "
            f"({len(original)} vs {len(anonymized)} records)"
        )
    if interpreter is None:
        original.columnar(attribute)  # let item_universe reuse the vocabulary
        interpreter = interpreter_for(hierarchy, original.item_universe(attribute))
    else:
        _require_universe(interpreter)

    def label_cost(label: str):
        # A label covers its restricted leaves at the (clamped) publication
        # cost; the reduction picks the most specific covering label and
        # charges vanished items 1 — exactly interpreter.best_costs.
        return interpreter.restricted_leaves(label), min(1.0, interpreter.cost(label))

    charged = _occurrence_charge_sum(original, anonymized, attribute, label_cost)
    if charged is not None:
        loss, total_items = charged
        return loss / total_items if total_items else 0.0
    # Exact per-record fallback for adversarial shapes (see the guards).
    total_items = sum(len(record[attribute]) for record in original)
    loss = 0.0
    for original_record, anonymized_record in zip(original, anonymized):
        best_costs = interpreter.best_costs(anonymized_record[attribute])
        # Sorted: summing in frozenset iteration order would tie the result
        # to the process hash seed by a few ulps (see checkpoint resume).
        for item in sorted(original_record[attribute]):
            loss += best_costs.get(item, 1.0)
    return loss / total_items if total_items else 0.0


def suppression_ratio(
    original: Dataset,
    anonymized: Dataset,
    attribute: str | None = None,
    hierarchy: Hierarchy | None = None,
    interpreter: LabelInterpreter | None = None,
) -> float:
    """Fraction of original item occurrences that vanished from the output."""
    attribute = attribute or original.single_transaction_attribute()
    if len(original) != len(anonymized):
        raise DatasetError("suppression_ratio expects aligned datasets")
    if interpreter is None:
        original.columnar(attribute)  # let item_universe reuse the vocabulary
        interpreter = interpreter_for(hierarchy, original.item_universe(attribute))
    else:
        _require_universe(interpreter)

    def label_coverage(label: str):
        # Covered occurrences cost 0, vanished ones fall through to the
        # reduction's uncovered default of 1 — counting suppressions.
        return interpreter.restricted_leaves(label), 0.0

    charged = _occurrence_charge_sum(original, anonymized, attribute, label_coverage)
    if charged is not None:
        suppressed, total = charged
        return suppressed / total if total else 0.0
    total = 0
    suppressed = 0
    for original_record, anonymized_record in zip(original, anonymized):
        covered = interpreter.covered_items(anonymized_record[attribute])
        for item in original_record[attribute]:
            total += 1
            if item not in covered:
                suppressed += 1
    return suppressed / total if total else 0.0


def estimated_item_frequencies(
    anonymized: Dataset,
    universe: set[str],
    attribute: str | None = None,
    hierarchy: Hierarchy | None = None,
    interpreter: LabelInterpreter | None = None,
) -> dict[str, float]:
    """Expected support of each original item, estimated from anonymized data.

    A record containing the generalized item ``g`` contributes ``1/|leaves(g)|``
    to every original item ``g`` may stand for (uniformity assumption).  The
    estimate decomposes per distinct label: each label contributes its record
    count (one CSR ``bincount``) times its per-leaf weight.
    """
    attribute = attribute or anonymized.single_transaction_attribute()
    if interpreter is None:
        interpreter = interpreter_for(hierarchy, universe)
    else:
        _require_universe(interpreter)
    estimates = {item: 0.0 for item in universe}
    column = anonymized.columnar(attribute)
    occurrences = np.bincount(
        column.tokens, minlength=len(column.vocabulary)
    )
    for token, label in enumerate(column.vocabulary.items):
        count = int(occurrences[token])
        if count == 0:
            continue
        leaves = interpreter.restricted_leaves(label)
        if not leaves:
            continue
        weight = count / len(leaves)
        for item in leaves:
            # The interpreter works on stringified items (dataset items are
            # always strings); weights whose keys don't appear in the caller's
            # universe are dropped, so an out-of-contract non-string universe
            # yields all-zero estimates instead of a KeyError.
            if item in estimates:
                estimates[item] += weight
    return estimates


def item_frequency_error(
    original: Dataset,
    anonymized: Dataset,
    attribute: str | None = None,
    hierarchy: Hierarchy | None = None,
    floor: float = 1.0,
) -> dict[str, float]:
    """Per-item relative error between original and estimated supports."""
    attribute = attribute or original.single_transaction_attribute()
    universe = original.item_universe(attribute)
    actual = value_frequencies(original, attribute)
    estimated = estimated_item_frequencies(
        anonymized, universe, attribute=attribute, hierarchy=hierarchy
    )
    return {
        item: abs(estimated.get(item, 0.0) - actual.get(item, 0))
        / max(actual.get(item, 0), floor)
        for item in sorted(universe)
    }


def average_item_frequency_error(
    original: Dataset,
    anonymized: Dataset,
    attribute: str | None = None,
    hierarchy: Hierarchy | None = None,
    floor: float = 1.0,
) -> float:
    """Mean of :func:`item_frequency_error` over the item universe."""
    errors = item_frequency_error(
        original, anonymized, attribute=attribute, hierarchy=hierarchy, floor=floor
    )
    return sum(errors.values()) / len(errors) if errors else 0.0
