"""SARIF 2.1.0 output: schema validation and content round-trip."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from lint_harness import LintHarness

from repro.analysis.cli import main
from repro.analysis.manifest import InvariantManifest
from repro.analysis.reporting import SARIF_VERSION, render_sarif

SCHEMA_PATH = Path(__file__).with_name("sarif_2_1_0_schema.json")

SWALLOWED = """
    def swallow():
        try:
            work()
        except Exception:
            pass
"""

SCOPED = InvariantManifest(exception_scope=("src/",))


def _sarif_log(harness, source=SWALLOWED) -> dict:
    harness.write("src/mod.py", source)
    report = harness.lint("src", manifest=SCOPED, select=["REP005"])
    return json.loads(render_sarif(report))


class TestSarifSchema:
    def test_log_validates_against_sarif_2_1_0(self, harness):
        jsonschema = pytest.importorskip("jsonschema")
        schema = json.loads(SCHEMA_PATH.read_text())
        jsonschema.validate(_sarif_log(harness), schema)

    def test_suppressed_and_baselined_results_validate_too(self, harness):
        jsonschema = pytest.importorskip("jsonschema")
        schema = json.loads(SCHEMA_PATH.read_text())
        suppressed = SWALLOWED.replace(
            "except Exception:",
            "except Exception:  # repro: allow[REP005] -- fixture",
        )
        jsonschema.validate(_sarif_log(harness, suppressed), schema)


class TestSarifContent:
    def test_version_and_schema_pointer(self, harness):
        log = _sarif_log(harness)
        assert log["version"] == SARIF_VERSION == "2.1.0"
        assert log["$schema"].endswith("sarif-schema-2.1.0.json")

    def test_driver_lists_every_registered_rule(self, harness):
        from repro.analysis.core import all_rules

        log = _sarif_log(harness)
        driver = log["runs"][0]["tool"]["driver"]
        assert driver["name"] == "repro-lint"
        assert {rule["id"] for rule in driver["rules"]} == {
            rule.code for rule in all_rules()
        }

    def test_new_finding_is_an_error_result_with_location(self, harness):
        log = _sarif_log(harness)
        (result,) = log["runs"][0]["results"]
        assert result["ruleId"] == "REP005"
        assert result["level"] == "error"
        physical = result["locations"][0]["physicalLocation"]
        assert physical["artifactLocation"]["uri"] == "src/mod.py"
        assert physical["region"]["startLine"] >= 1
        assert physical["region"]["startColumn"] >= 1
        assert result["logicalLocations"][0]["fullyQualifiedName"] == "swallow"

    def test_suppressed_finding_is_a_note_with_suppression(self, harness):
        suppressed = SWALLOWED.replace(
            "except Exception:",
            "except Exception:  # repro: allow[REP005] -- fixture",
        )
        log = _sarif_log(harness, suppressed)
        (result,) = log["runs"][0]["results"]
        assert result["level"] == "note"
        (suppression,) = result["suppressions"]
        assert suppression["kind"] == "inSource"
        assert suppression["justification"] == "fixture"

    def test_cli_emits_the_same_document(self, tmp_path, capsys):
        harness = LintHarness(tmp_path)
        harness.write("src/mod.py", "x = 1\n")
        harness.write("invariants.toml", '[rep005]\nscope = ["src"]\n')
        assert (
            main(
                [
                    "src",
                    "--root",
                    str(tmp_path),
                    "--manifest",
                    str(tmp_path / "invariants.toml"),
                    "--format",
                    "sarif",
                ]
            )
            == 0
        )
        log = json.loads(capsys.readouterr().out)
        assert log["version"] == "2.1.0"
        assert log["runs"][0]["results"] == []
