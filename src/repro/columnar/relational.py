"""Tokenized views of relational (single-valued) attributes.

The relational twin of :class:`~repro.columnar.column.TransactionColumn`:
one relational attribute becomes a dense ``int32`` code per record over the
column's distinct-value vocabulary, so the per-record hot loops — NCP lookup
tables, equivalence-class grouping, greedy cluster scoring — collapse into
``np.take`` / ``np.unique`` / comparison passes over flat arrays.

* :class:`CategoricalColumn` — codes over the distinct cell values in
  first-seen order.  Values keep their Python identity semantics: two cells
  receive the same code exactly when they are equal as dictionary keys,
  which is the grouping rule ``Dataset.group_by`` and the per-cell metric
  memos already use (``25`` and ``25.0`` share a code, ``None`` gets its
  own).
* :class:`NumericColumn` — a :class:`CategoricalColumn` plus a ``float64``
  view with ``NaN`` where a cell is missing or holds a non-numeric
  (generalized) label, ready for ``fmin``/``fmax`` span kernels.

Like the transaction column, a relational column is a snapshot:
:meth:`repro.datasets.dataset.Dataset.columnar` caches one per attribute and
drops it on any dataset mutation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (dataset ↔ columnar)
    from repro.datasets.dataset import Dataset


class CategoricalColumn:
    """Dense code-per-record view of one relational attribute."""

    __slots__ = ("attribute", "codes", "values", "_index", "_cells", "_string_codes")

    def __init__(
        self,
        values: tuple,
        codes: np.ndarray,
        attribute: str = "",
        cells: list | None = None,
    ) -> None:
        #: Distinct cell values in code order (``values[code]`` inverts codes).
        self.values = values
        #: ``int32`` code of every record's cell, parallel to the records.
        self.codes = codes
        self.attribute = attribute
        self._index: dict | None = None
        #: Raw per-record cell values (shared references), kept until the
        #: string-identity view is materialized: dictionary-key equality can
        #: collapse cells whose string forms differ (``25`` vs ``25.0``), so
        #: ``string_codes()`` must re-derive identity from the cells.
        self._cells = cells
        self._string_codes: tuple[np.ndarray, tuple[str, ...]] | None = None

    @classmethod
    def from_dataset(
        cls, dataset: "Dataset", attribute: str
    ) -> "CategoricalColumn":
        """Tokenize the cells of ``attribute`` in first-seen order."""
        cells = [record[attribute] for record in dataset]
        index: dict = {}
        codes = np.empty(len(cells), dtype=np.int32)
        for position, value in enumerate(cells):
            code = index.get(value)
            if code is None:
                code = len(index)
                index[value] = code
            codes[position] = code
        column = cls(tuple(index), codes, attribute=attribute, cells=cells)
        column._index = index
        return column

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(attribute={self.attribute!r}, "
            f"records={self.n_records}, distinct={len(self.values)})"
        )

    @property
    def n_records(self) -> int:
        return len(self.codes)

    def code_of(self, value: object) -> int | None:
        """The code of ``value`` (``None`` for values absent from the column)."""
        if self._index is None:
            self._index = {value: code for code, value in enumerate(self.values)}
        return self._index.get(value)

    def take(self, table: np.ndarray) -> np.ndarray:
        """Gather a per-code lookup ``table`` into a per-record array."""
        return np.take(table, self.codes)

    def string_codes(self) -> tuple[np.ndarray, tuple[str, ...]]:
        """Per-record codes over ``str(value)`` identity (cached).

        The clustering and merge cost models compare categorical cells as
        strings and skip missing ones; this view re-keys the cells on their
        string form (``str`` identity is neither finer nor coarser than the
        dictionary-key identity of :attr:`codes`: ``"25"`` and ``25``
        stringify alike, ``25`` and ``25.0`` do not) and sends ``None`` cells
        to the sentinel code ``len(labels)``.  Returns ``(codes, labels)``
        with ``labels`` the distinct strings in code order.
        """
        if self._string_codes is None:
            index: dict[str, int] = {}
            cells = (
                self._cells
                if self._cells is not None
                else (self.values[code] for code in self.codes)
            )
            raw = np.empty(len(self.codes), dtype=np.int64)
            missing: list[int] = []
            for position, value in enumerate(cells):
                if value is None:
                    missing.append(position)
                    raw[position] = -1
                else:
                    raw[position] = index.setdefault(str(value), len(index))
            raw[missing] = len(index)
            self._string_codes = (raw, tuple(index))
            self._cells = None  # the derived view replaces the raw cells
        return self._string_codes


class NumericColumn(CategoricalColumn):
    """A categorical code view plus the ``float64`` values of a numeric column.

    ``numbers[r]`` is the cell of record ``r`` as a float, or ``NaN`` when the
    cell is missing (``None``) or a non-numeric generalized label such as
    ``"[20-40]"`` — the representation the span kernels (``np.fmin`` /
    ``np.fmax``, which skip ``NaN``) consume directly.
    """

    __slots__ = ("numbers",)

    def __init__(
        self,
        values: tuple,
        codes: np.ndarray,
        attribute: str = "",
        cells: list | None = None,
        numbers: np.ndarray | None = None,
    ) -> None:
        super().__init__(values, codes, attribute=attribute, cells=cells)
        if numbers is not None:
            # A precomputed float view (e.g. a zero-copy shared-memory
            # attachment — see repro.columnar.shared) replaces the derivation.
            self.numbers = numbers
            return
        per_code = np.fromiter(
            (
                float(value) if isinstance(value, (int, float)) else np.nan
                for value in values
            ),
            dtype=np.float64,
            count=len(values),
        )
        self.numbers = (
            np.take(per_code, codes) if len(values) else np.full(len(codes), np.nan)
        )

    @classmethod
    def from_dataset(cls, dataset: "Dataset", attribute: str) -> "NumericColumn":
        base = CategoricalColumn.from_dataset(dataset, attribute)
        column = cls(base.values, base.codes, attribute=attribute, cells=base._cells)
        column._index = base._index
        return column
