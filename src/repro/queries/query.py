"""COUNT queries over RT-datasets.

SECRETA evaluates data utility "in query answering" with the query type of
Xu et al. (KDD 2006): COUNT queries that combine range or equality predicates
on relational attributes with containment predicates on the transaction
attribute, e.g. *"how many customers aged 25–35 with a Bachelors degree bought
bread and milk?"*.

A query can be answered exactly on the original dataset
(:meth:`Query.count`) and only estimated on an anonymized dataset
(:meth:`Query.estimate`): a generalized value may or may not stand for a
matching original value, so each record contributes the probability that it
matches, under the standard uniformity assumption.

Label resolution supports two *universe modes* (see ``docs/queries.md``):

* ``"seed"`` — labels resolve against their hierarchy alone.  The
  hierarchy-free root ``*`` then stands for nothing and a root-generalized
  record contributes probability 0, even though ``utility_loss`` charges the
  same record as fully generalized.
* ``"original"`` (the default) — labels resolve through interpreters keyed by
  the *original* dataset's attribute domains
  (:class:`~repro.datasets.domains.DatasetDomains`), so ``*`` and
  hierarchy-free group labels get leaf-uniform match probabilities consistent
  with the utility-loss charging rule.  Without a ``domains`` snapshot the
  mode degrades to the seed semantics (there is no universe to resolve
  against).

Both :meth:`Query.count` and :meth:`Query.estimate` run on the columnar
kernel layer by default (per-distinct-label probability tables gathered
through :meth:`Dataset.columnar` code arrays, AND+popcount over posting
bitsets); the per-record path is retained as the exact reference and the
fallback for shapes the kernels do not cover.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

import numpy as np

from repro.columnar import (
    TransactionColumn,
    intersect_rows,
    mask_to_bitset,
    popcount,
    row_max,
    sequential_sum,
)
from repro.columnar.relational import CategoricalColumn
from repro.datasets.dataset import Dataset, Record
from repro.datasets.domains import DatasetDomains
from repro.exceptions import QueryError
from repro.hierarchy.hierarchy import Hierarchy
from repro.index import LabelInterpreter, interpreter_for

#: Valid values of the ``universe_mode`` switch.
UNIVERSE_MODES = ("original", "seed")


def _require_universe_mode(universe_mode: str) -> None:
    if universe_mode not in UNIVERSE_MODES:
        raise QueryError(
            f"unknown universe mode {universe_mode!r}; expected one of {UNIVERSE_MODES}"
        )


@dataclass(frozen=True)
class RangeCondition:
    """A numeric predicate ``low <= value <= high``."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if self.low > self.high:
            raise QueryError(f"empty range [{self.low}, {self.high}]")

    def match_probability(
        self,
        value: Any,
        hierarchy: Hierarchy | None = None,
        interpreter: LabelInterpreter | None = None,
    ) -> float:
        """Probability that a (possibly generalized) value satisfies the range.

        Interval labels contribute their overlap fraction.  A label with no
        numeric span resolves through the interpreter's restricted leaf sets
        when the interpreter carries a universe (the ``"original"`` mode):
        the hierarchy-free root ``*`` then matches with the fraction of the
        attribute's original values inside the range instead of 0.  A
        universe-less interpreter (the ``"seed"`` mode, and exact counting)
        keeps the span-only semantics.
        """
        if value is None:
            return 0.0
        if isinstance(value, (int, float)):
            return 1.0 if self.low <= value <= self.high else 0.0
        if interpreter is None:
            interpreter = interpreter_for(hierarchy)
        span = interpreter.span(value)
        if span is None:
            if interpreter.universe is None:
                return 0.0
            return self._leaf_fraction(interpreter.restricted_leaves(value))
        low, high = span
        if high < self.low or low > self.high:
            return 0.0
        if high == low:
            return 1.0
        overlap = min(high, self.high) - max(low, self.low)
        return max(0.0, min(1.0, overlap / (high - low)))

    def _leaf_fraction(self, leaves: frozenset[str]) -> float:
        """Fraction of a label's (stringified) leaf values inside the range."""
        if not leaves:
            return 0.0
        matching = 0
        for leaf in leaves:
            try:
                number = float(leaf)
            except (TypeError, ValueError):
                continue
            if self.low <= number <= self.high:
                matching += 1
        return matching / len(leaves)

    def to_dict(self) -> dict:
        return {"type": "range", "low": self.low, "high": self.high}


@dataclass(frozen=True)
class ValueCondition:
    """A categorical predicate ``value IN accepted``."""

    accepted: frozenset[str]

    def __init__(self, accepted: Iterable[str]):
        object.__setattr__(
            self, "accepted", frozenset(str(value) for value in accepted)
        )
        if not self.accepted:
            raise QueryError("a value condition needs at least one accepted value")

    def match_probability(
        self,
        value: Any,
        hierarchy: Hierarchy | None = None,
        interpreter: LabelInterpreter | None = None,
    ) -> float:
        """Probability that a (possibly generalized) value is an accepted one.

        Labels resolve through the interpreter's *restricted* leaf sets: an
        interpreter keyed by the original dataset's attribute domain (the
        ``"original"`` universe mode) counts only values the data actually
        contains, so the generic root ``*`` matches with leaf-uniform
        probability instead of 0.  A universe-less interpreter (the ``"seed"``
        mode) restricts to nothing and reproduces the hierarchy-only
        semantics.
        """
        if value is None:
            return 0.0
        value = str(value)
        if value in self.accepted:
            return 1.0
        if interpreter is None:
            interpreter = interpreter_for(hierarchy)
        leaves = interpreter.restricted_leaves(value)
        if not leaves:
            return 0.0
        matching = len(leaves & self.accepted)
        if matching == 0:
            return 0.0
        return matching / len(leaves)

    def to_dict(self) -> dict:
        return {"type": "values", "accepted": sorted(self.accepted)}


Condition = RangeCondition | ValueCondition


def condition_from_dict(data: Mapping) -> Condition:
    """Inverse of ``Condition.to_dict`` (used by the workload file format)."""
    kind = data.get("type")
    if kind == "range":
        return RangeCondition(float(data["low"]), float(data["high"]))
    if kind == "values":
        return ValueCondition(data["accepted"])
    raise QueryError(f"unknown condition type {kind!r}")


@dataclass(frozen=True)
class Query:
    """A COUNT query over relational predicates and required items."""

    conditions: Mapping[str, Condition] = field(default_factory=dict)
    items: frozenset[str] = field(default_factory=frozenset)
    transaction_attribute: str | None = None

    def __init__(
        self,
        conditions: Mapping[str, Condition] | None = None,
        items: Iterable[str] = (),
        transaction_attribute: str | None = None,
    ):
        object.__setattr__(self, "conditions", dict(conditions or {}))
        object.__setattr__(self, "items", frozenset(str(item) for item in items))
        object.__setattr__(self, "transaction_attribute", transaction_attribute)
        if not self.conditions and not self.items:
            raise QueryError("a query needs at least one predicate")

    # -- exact evaluation -------------------------------------------------------
    def _matches_exactly(self, record: Record, transaction_attribute: str | None) -> bool:
        for attribute, condition in self.conditions.items():
            if condition.match_probability(record[attribute]) < 1.0:
                return False
        if self.items:
            if transaction_attribute is None:
                raise QueryError(
                    "query has item predicates but the dataset has no "
                    "transaction attribute"
                )
            if not self.items <= record[transaction_attribute]:
                return False
        return True

    def count(self, dataset: Dataset, vectorized: bool = True) -> int:
        """Exact number of matching records (for original, truthful data).

        ``vectorized`` answers through the columnar layer — per-distinct-value
        match tables gathered over the relational code arrays, and an
        AND+popcount over the required items' posting bitsets — falling back
        to the per-record scan for shapes the kernel does not cover.
        """
        transaction_attribute = self._transaction_attribute(dataset)
        if self.items and transaction_attribute is None and len(dataset):
            raise QueryError(
                "query has item predicates but the dataset has no "
                "transaction attribute"
            )
        if vectorized:
            counted = self._count_columnar(dataset, transaction_attribute)
            if counted is not None:
                return counted
        return sum(
            1
            for record in dataset
            if self._matches_exactly(record, transaction_attribute)
        )

    def _count_columnar(
        self, dataset: Dataset, transaction_attribute: str | None
    ) -> int | None:
        """Kernel path of :meth:`count` (``None`` → caller takes the scan)."""
        mask: np.ndarray | None = None
        for attribute, condition in self.conditions.items():
            column = dataset.columnar(attribute)
            if not isinstance(column, CategoricalColumn):
                return None  # condition on a set-valued attribute
            if isinstance(condition, ValueCondition):
                codes, labels = column.string_codes()
                table = np.empty(len(labels) + 1, dtype=bool)
                for code, label in enumerate(labels):
                    table[code] = condition.match_probability(label) >= 1.0
                table[len(labels)] = False  # missing cells never match
                matches = table[codes]
            else:
                table = np.fromiter(
                    (
                        condition.match_probability(value) >= 1.0
                        for value in column.values
                    ),
                    dtype=bool,
                    count=len(column.values),
                )
                matches = table[column.codes]
            mask = matches if mask is None else mask & matches
        if not self.items:
            return len(dataset) if mask is None else int(np.count_nonzero(mask))
        if transaction_attribute is None:
            return 0  # only reachable on an empty dataset (see count)
        column = dataset.columnar(transaction_attribute)
        if not isinstance(column, TransactionColumn):
            return None  # item predicates against a single-valued attribute
        tokens = [column.vocabulary.token(item) for item in self.items]
        if any(token is None for token in tokens):
            return 0  # an item absent from the data matches no record
        bits = intersect_rows(column.bitset_postings(), tokens)
        if mask is not None:
            bits = bits & mask_to_bitset(mask)
        return popcount(bits)

    # -- probabilistic evaluation -------------------------------------------------
    def estimate(
        self,
        dataset: Dataset,
        hierarchies: Mapping[str, Hierarchy] | None = None,
        interpreters: Mapping[str, LabelInterpreter] | None = None,
        *,
        domains: DatasetDomains | None = None,
        universe_mode: str = "original",
        vectorized: bool = True,
    ) -> float:
        """Expected number of matching records in an anonymized dataset.

        Every record contributes the product of the per-predicate match
        probabilities (independence + uniformity assumptions, as in the
        query-answering evaluations of the anonymization literature).
        ``interpreters`` maps attribute names to pre-built label interpreters;
        missing entries are resolved through the shared interpreter cache, so
        label resolution is memoized either way.

        ``domains`` is a :class:`~repro.datasets.domains.DatasetDomains`
        snapshot of the *original* dataset; under
        ``universe_mode="original"`` each attribute's interpreter is keyed by
        its domain, so hierarchy-free generalized labels (the root ``*``,
        COAT/PCTA item groups) resolve to leaf-uniform probabilities
        consistent with the utility-loss charging rule.
        ``universe_mode="seed"`` (or a missing snapshot) keeps the
        hierarchy-only resolution.  ``vectorized`` scores the query through
        the columnar estimation kernel, which matches the per-record path
        bit for bit; the per-record path remains the exact reference and the
        fallback.
        """
        _require_universe_mode(universe_mode)
        hierarchies = hierarchies or {}
        interpreters = dict(interpreters or {})
        transaction_attribute = self._transaction_attribute(dataset)
        if self.items and transaction_attribute is None:
            raise QueryError(
                "query has item predicates but the dataset has no "
                "transaction attribute"
            )
        for attribute in (*self.conditions, transaction_attribute):
            if attribute is not None and attribute not in interpreters:
                universe = None
                if universe_mode == "original" and domains is not None:
                    universe = domains.universe_for(attribute)
                interpreters[attribute] = interpreter_for(
                    hierarchies.get(attribute), universe
                )
        if vectorized:
            estimated = self._estimate_columnar(
                dataset, hierarchies, interpreters, transaction_attribute
            )
            if estimated is not None:
                return estimated
        total = 0.0
        for record in dataset:
            probability = 1.0
            for attribute, condition in self.conditions.items():
                probability *= condition.match_probability(
                    record[attribute],
                    hierarchies.get(attribute),
                    interpreters[attribute],
                )
                if probability == 0.0:
                    break
            if probability and self.items:
                probability *= self._itemset_probability(
                    record[transaction_attribute], interpreters[transaction_attribute]
                )
            total += probability
        return total

    def _estimate_columnar(
        self,
        dataset: Dataset,
        hierarchies: Mapping[str, Hierarchy],
        interpreters: Mapping[str, LabelInterpreter],
        transaction_attribute: str | None,
    ) -> float | None:
        """Kernel path of :meth:`estimate` (``None`` → caller takes the scan).

        Each predicate is resolved once per *distinct* label into a
        probability table and gathered per record through the columnar code
        arrays; required items reduce per CSR row with ``maximum.reduceat``.
        The multiplication and accumulation orders replicate the per-record
        path exactly, so both paths agree to the last ulp.
        """
        if len(dataset) == 0:
            return 0.0
        probability = np.ones(len(dataset), dtype=np.float64)
        for attribute, condition in self.conditions.items():
            column = dataset.columnar(attribute)
            if not isinstance(column, CategoricalColumn):
                return None  # condition on a set-valued attribute
            hierarchy = hierarchies.get(attribute)
            interpreter = interpreters[attribute]
            if isinstance(condition, ValueCondition):
                # String-identity codes: the condition compares ``str(value)``
                # and sends missing cells to 0, exactly the sentinel code.
                codes, labels = column.string_codes()
                table = np.empty(len(labels) + 1, dtype=np.float64)
                for code, label in enumerate(labels):
                    table[code] = condition.match_probability(
                        label, hierarchy, interpreter
                    )
                table[len(labels)] = 0.0
                probability *= table[codes]
            else:
                # Dictionary-key codes: cells sharing a code (25 vs 25.0) are
                # numerically equal, which a range predicate cannot tell apart.
                table = np.fromiter(
                    (
                        condition.match_probability(value, hierarchy, interpreter)
                        for value in column.values
                    ),
                    dtype=np.float64,
                    count=len(column.values),
                )
                probability *= np.take(table, column.codes)
        if self.items:
            column = dataset.columnar(transaction_attribute)
            if not isinstance(column, TransactionColumn):
                return None  # item predicates against a single-valued attribute
            interpreter = interpreters[transaction_attribute]
            vocabulary = column.vocabulary
            # The per-record path computes the whole itemset product first and
            # multiplies it into the record probability once; float
            # multiplication is not associative, so the kernel must do the
            # same to stay bit-for-bit equal.
            itemset_probability = np.ones(len(dataset), dtype=np.float64)
            for item in self.items:
                weights = np.zeros(len(vocabulary), dtype=np.float64)
                for token, label in enumerate(vocabulary.items):
                    leaves = interpreter.restricted_leaves(label)
                    if item in leaves:
                        weights[token] = 1.0 / len(leaves)
                own = vocabulary.token(item)
                if own is not None:
                    # Literal containment matches with certainty, regardless
                    # of how the label resolves against the universe.
                    weights[own] = 1.0
                itemset_probability *= row_max(
                    column.indptr, np.take(weights, column.tokens)
                )
            probability *= itemset_probability
        return sequential_sum(probability)

    def _itemset_probability(
        self, itemset: frozenset, interpreter: LabelInterpreter
    ) -> float:
        probability = 1.0
        for item in self.items:
            if item in itemset:
                continue
            best = 0.0
            for generalized in itemset:
                leaves = interpreter.restricted_leaves(generalized)
                if item in leaves:
                    best = max(best, 1.0 / len(leaves))
            probability *= best
            if probability == 0.0:
                return 0.0
        return probability

    def _transaction_attribute(self, dataset: Dataset) -> str | None:
        if self.transaction_attribute is not None:
            return self.transaction_attribute
        names = dataset.schema.transaction_names
        if not names:
            return None
        return names[0]

    # -- serialisation --------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "conditions": {
                attribute: condition.to_dict()
                for attribute, condition in self.conditions.items()
            },
            "items": sorted(self.items),
            "transaction_attribute": self.transaction_attribute,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "Query":
        conditions = {
            attribute: condition_from_dict(condition)
            for attribute, condition in dict(data.get("conditions", {})).items()
        }
        return cls(
            conditions=conditions,
            items=data.get("items", ()),
            transaction_attribute=data.get("transaction_attribute"),
        )

    def describe(self) -> str:
        """Human-readable one-line description of the query."""
        parts = []
        for attribute, condition in self.conditions.items():
            if isinstance(condition, RangeCondition):
                parts.append(f"{attribute} in [{condition.low}, {condition.high}]")
            else:
                parts.append(f"{attribute} in {sorted(condition.accepted)}")
        if self.items:
            parts.append(f"items ⊇ {sorted(self.items)}")
        return "COUNT where " + " and ".join(parts)
