"""CLAIM-VARY — varying-parameter execution (Section 2.1).

The Experimentation Module plots "data utility indicators and runtime vs. the
varying parameter".  These benchmarks sweep k and m for a transaction
algorithm and k for a relational algorithm, recording the indicator curves.
The expected shape: utility loss and ARE grow (weakly) with k and m, runtime
is roughly flat or grows with stricter privacy.
"""

from __future__ import annotations

from repro.engine import (
    ParameterSweep,
    VaryingParameterExperiment,
    relational_config,
    transaction_config,
)


def _experiment(session):
    return VaryingParameterExperiment(
        session.dataset, session.resources(), verify_privacy=False
    )


def test_k_sweep_apriori(benchmark, session, record):
    sweep = ParameterSweep("k", (2, 5, 10, 20, 40))
    result = benchmark.pedantic(
        _experiment(session).run,
        args=(transaction_config("apriori", m=2, label="apriori"), sweep),
        rounds=1,
        iterations=1,
    )
    record(
        "vary_k_apriori",
        {
            "k": list(result.values),
            "transaction_ul": result.series["transaction_ul"].y,
            "are": result.series["are"].y,
            "runtime_seconds": result.series["runtime_seconds"].y,
        },
    )
    ul = result.series["transaction_ul"].y
    assert ul == sorted(ul), "utility loss should not decrease as k grows"


def test_m_sweep_apriori(benchmark, session, record):
    sweep = ParameterSweep("m", (1, 2, 3))
    result = benchmark.pedantic(
        _experiment(session).run,
        args=(transaction_config("apriori", k=5, label="apriori"), sweep),
        rounds=1,
        iterations=1,
    )
    record(
        "vary_m_apriori",
        {
            "m": list(result.values),
            "transaction_ul": result.series["transaction_ul"].y,
            "runtime_seconds": result.series["runtime_seconds"].y,
        },
    )
    ul = result.series["transaction_ul"].y
    assert ul[-1] >= ul[0] - 1e-9, "larger adversary knowledge cannot cost less utility"


def test_k_sweep_cluster(benchmark, session, record):
    sweep = ParameterSweep("k", (5, 10, 20, 40))
    result = benchmark.pedantic(
        _experiment(session).run,
        args=(relational_config("cluster", label="cluster"), sweep),
        rounds=1,
        iterations=1,
    )
    record(
        "vary_k_cluster",
        {
            "k": list(result.values),
            "relational_gcp": result.series["relational_gcp"].y,
            "are": result.series["are"].y,
        },
    )
    gcp = result.series["relational_gcp"].y
    assert gcp[-1] >= gcp[0] - 1e-9
