"""Tests for the RT-dataset model."""

import pytest

from repro.datasets import Attribute, Dataset, Schema
from repro.exceptions import DatasetError, SchemaError


@pytest.fixture
def schema() -> Schema:
    return Schema(
        [
            Attribute.numeric("Age"),
            Attribute.categorical("Education"),
            Attribute.transaction("Items"),
        ]
    )


@pytest.fixture
def dataset(schema) -> Dataset:
    rows = [
        {"Age": 25, "Education": "Bachelors", "Items": ["a", "b"]},
        {"Age": 30, "Education": "Masters", "Items": ["b"]},
        {"Age": 25, "Education": "Bachelors", "Items": ["c", "a"]},
    ]
    return Dataset(schema, rows, name="unit")


class TestConstruction:
    def test_append_normalises_transaction_cells_to_frozensets(self, dataset):
        assert dataset[0]["Items"] == frozenset({"a", "b"})
        assert isinstance(dataset[0]["Items"], frozenset)

    def test_append_rejects_unknown_attributes(self, dataset):
        with pytest.raises(SchemaError):
            dataset.append({"Age": 1, "Education": "x", "Items": [], "Oops": 1})

    def test_append_rejects_string_for_transaction(self, schema):
        dataset = Dataset(schema)
        with pytest.raises(DatasetError):
            dataset.append({"Age": 1, "Education": "x", "Items": "a b"})

    def test_numeric_coercion_from_strings(self, schema):
        dataset = Dataset(schema)
        dataset.append({"Age": "42", "Education": "PhD", "Items": []})
        assert dataset[0]["Age"] == 42

    def test_numeric_rejects_garbage(self, schema):
        dataset = Dataset(schema)
        with pytest.raises(DatasetError):
            dataset.append({"Age": "not-a-number", "Education": "PhD", "Items": []})

    def test_from_rows_positional(self, schema):
        dataset = Dataset.from_rows(schema, [[25, "Bachelors", ["a"]]])
        assert dataset[0]["Education"] == "Bachelors"
        with pytest.raises(DatasetError):
            Dataset.from_rows(schema, [[25, "Bachelors"]])

    def test_missing_values_become_none_or_empty(self, schema):
        dataset = Dataset(schema)
        dataset.append({})
        assert dataset[0]["Age"] is None
        assert dataset[0]["Education"] is None
        assert dataset[0]["Items"] == frozenset()


class TestAccessors:
    def test_len_iter_getitem(self, dataset):
        assert len(dataset) == 3
        assert [record["Age"] for record in dataset] == [25, 30, 25]
        assert dataset[1]["Education"] == "Masters"

    def test_column(self, dataset):
        assert dataset.column("Age") == [25, 30, 25]
        with pytest.raises(SchemaError):
            dataset.column("Missing")

    def test_item_universe_and_single_transaction_attribute(self, dataset):
        assert dataset.item_universe() == {"a", "b", "c"}
        assert dataset.single_transaction_attribute() == "Items"

    def test_single_transaction_attribute_requires_exactly_one(self, dataset):
        dataset.remove_attribute("Items")
        with pytest.raises(SchemaError):
            dataset.single_transaction_attribute()

    def test_domain_sorted(self, dataset):
        assert dataset.domain("Age") == [25, 30]
        assert dataset.domain("Education") == ["Bachelors", "Masters"]
        assert dataset.domain("Items") == ["a", "b", "c"]

    def test_group_by_builds_equivalence_classes(self, dataset):
        groups = dataset.group_by(["Age", "Education"])
        assert groups[(25, "Bachelors")] == [0, 2]
        assert groups[(30, "Masters")] == [1]

    def test_is_rt_dataset(self, dataset):
        assert dataset.is_rt_dataset
        relational_only = dataset.project(["Age", "Education"])
        assert not relational_only.is_rt_dataset


class TestMutation:
    def test_set_value(self, dataset):
        dataset.set_value(0, "Age", 99)
        assert dataset[0]["Age"] == 99
        dataset.set_value(0, "Items", ["x", "y"])
        assert dataset[0]["Items"] == frozenset({"x", "y"})

    def test_set_value_bounds_check(self, dataset):
        with pytest.raises(DatasetError):
            dataset.set_value(10, "Age", 1)

    def test_remove_record(self, dataset):
        dataset.remove_record(1)
        assert len(dataset) == 2
        assert dataset.column("Age") == [25, 25]
        with pytest.raises(DatasetError):
            dataset.remove_record(10)

    def test_add_and_remove_attribute(self, dataset):
        dataset.add_attribute(Attribute.categorical("Country"), default="GR")
        assert dataset.column("Country") == ["GR", "GR", "GR"]
        dataset.remove_attribute("Country")
        assert "Country" not in dataset.schema

    def test_add_attribute_with_values_length_mismatch(self, dataset):
        with pytest.raises(DatasetError):
            dataset.add_attribute(Attribute.numeric("X"), values=[1])

    def test_rename_attribute(self, dataset):
        dataset.rename_attribute("Education", "Degree")
        assert dataset[0]["Degree"] == "Bachelors"
        with pytest.raises(SchemaError):
            dataset.column("Education")

    def test_map_column(self, dataset):
        dataset.map_column("Age", lambda v: v + 1)
        assert dataset.column("Age") == [26, 31, 26]


class TestTransformation:
    def test_copy_is_deep_for_records(self, dataset):
        clone = dataset.copy()
        clone.set_value(0, "Age", 1)
        assert dataset[0]["Age"] == 25

    def test_project(self, dataset):
        projected = dataset.project(["Age"])
        assert projected.schema.names == ["Age"]
        assert len(projected) == 3

    def test_select(self, dataset):
        selected = dataset.select(lambda record: record["Age"] > 25)
        assert len(selected) == 1
        assert selected[0]["Education"] == "Masters"

    def test_subset_preserves_order_and_checks_bounds(self, dataset):
        subset = dataset.subset([2, 0])
        assert subset.column("Age") == [25, 25]
        assert subset[0]["Items"] == frozenset({"a", "c"})
        with pytest.raises(DatasetError):
            dataset.subset([99])

    def test_to_rows_round_trip(self, dataset, schema):
        rebuilt = Dataset.from_rows(schema, dataset.to_rows())
        assert rebuilt == dataset
