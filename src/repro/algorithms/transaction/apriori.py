"""Apriori-based k^m-anonymization of transactions (Terrovitis et al., VLDB J. 2011).

The *Apriori Anonymization* (AA) algorithm protects a set-valued attribute
against adversaries who know up to ``m`` items of an individual: every
combination of up to ``m`` items must match at least ``k`` transactions (or
none).  The algorithm explores combinations in Apriori fashion — first single
items, then pairs, and so on — and whenever a combination is supported by
fewer than ``k`` transactions it generalizes the participating items using
full-subtree global recoding over the item hierarchy.

If even full generalization cannot protect the data (fewer than ``k``
non-empty transactions), the remaining items are suppressed and the fact is
reported in the result statistics.
"""

from __future__ import annotations

from repro.algorithms.base import AnonymizationResult, Anonymizer, PhaseTimer
from repro.algorithms.transaction._itemcut import ItemCut, greedy_km_anonymize
from repro.datasets.dataset import Dataset
from repro.exceptions import AlgorithmError, ConfigurationError
from repro.hierarchy.builders import build_item_hierarchy
from repro.hierarchy.hierarchy import Hierarchy
from repro.metrics.transaction import utility_loss


class AprioriAnonymizer(Anonymizer):
    """k^m-anonymity via apriori-style global full-subtree generalization."""

    name = "apriori"
    data_kind = "transaction"

    def __init__(
        self,
        k: int,
        m: int = 2,
        hierarchy: Hierarchy | None = None,
        attribute: str | None = None,
        hierarchy_fanout: int = 4,
    ):
        if k < 2:
            raise ConfigurationError("AprioriAnonymizer: k must be at least 2")
        if m < 1:
            raise ConfigurationError("AprioriAnonymizer: m must be at least 1")
        self.k = int(k)
        self.m = int(m)
        self.hierarchy = hierarchy
        self.attribute = attribute
        self.hierarchy_fanout = hierarchy_fanout

    def parameters(self) -> dict:
        return {"k": self.k, "m": self.m, "attribute": self.attribute}

    def _resolve_hierarchy(self, dataset: Dataset, attribute: str) -> Hierarchy:
        if self.hierarchy is not None:
            return self.hierarchy
        universe = dataset.item_universe(attribute)
        if not universe:
            raise AlgorithmError("AprioriAnonymizer: the transaction attribute is empty")
        return build_item_hierarchy(
            universe, fanout=self.hierarchy_fanout, attribute=attribute
        )

    def anonymize(self, dataset: Dataset) -> AnonymizationResult:
        attribute = self.attribute or dataset.single_transaction_attribute()
        timer = PhaseTimer()
        with timer.phase("hierarchy"):
            hierarchy = self._resolve_hierarchy(dataset, attribute)
        itemsets = [record[attribute] for record in dataset]

        with timer.phase("apriori search"):
            cut, search_statistics = greedy_km_anonymize(
                itemsets, hierarchy, self.k, self.m, apriori_order=True
            )

        suppressed_everything = False
        with timer.phase("apply"):
            anonymized = dataset.copy(name=f"{dataset.name}[apriori]")
            if search_statistics["unresolvable_violations"]:
                anonymized.map_column(attribute, lambda _items: [])
                suppressed_everything = True
            else:
                anonymized.map_column(
                    attribute, lambda items: sorted(cut.generalize_itemset(items))
                )

        statistics = {
            **search_statistics,
            "suppressed_everything": suppressed_everything,
            "utility_loss": utility_loss(
                dataset, anonymized, attribute=attribute, hierarchy=hierarchy
            ),
        }
        return AnonymizationResult(
            dataset=anonymized,
            algorithm=self.name,
            parameters=self.parameters(),
            runtime_seconds=timer.total,
            phase_seconds=timer.phases,
            statistics=statistics,
        )
