"""docs/static-analysis.md must stay in sync with the rule registry."""

from __future__ import annotations

import re
from pathlib import Path

from repro.analysis.core import all_rules

DOC_PATH = Path(__file__).resolve().parents[2] / "docs" / "static-analysis.md"

#: A rule-table row: ``| REP009 | resource-escape | dataflow |``.
_ROW = re.compile(r"^\|\s*(REP\d{3})\s*\|\s*([a-z0-9-]+)\s*\|", re.MULTILINE)


def _documented_rows() -> dict[str, str]:
    return {code: name for code, name in _ROW.findall(DOC_PATH.read_text())}


class TestDocsSync:
    def test_every_registered_rule_is_in_the_doc_table(self):
        rows = _documented_rows()
        for rule in all_rules():
            assert rule.code in rows, f"{rule.code} missing from the doc table"
            assert rows[rule.code] == rule.name, (
                f"{rule.code} documented as {rows[rule.code]!r} "
                f"but registered as {rule.name!r}"
            )

    def test_no_phantom_rules_in_the_doc_table(self):
        registered = {rule.code for rule in all_rules()}
        assert set(_documented_rows()) <= registered

    def test_prose_section_exists_for_every_rule(self):
        text = DOC_PATH.read_text()
        for rule in all_rules():
            assert f"**{rule.code} — " in text, (
                f"{rule.code} has a table row but no prose paragraph"
            )
