"""REP003 — every vectorized kernel declares a scalar parity reference.

The columnar kernels of PRs 3–5 are only trustworthy because each one has a
scalar twin (a retained per-record code path or a brute-force reference in
the property-test suite) pinned equal by tests.  The parity manifest
(``[[rep003.pairs]]`` in ``invariants.toml``) records those twins; this rule
fails when a kernel module grows a public function with no declared
fallback, or when a manifest reference goes stale.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.core import Finding, Project, Rule, register


@register
class KernelParity(Rule):
    code = "REP003"
    name = "kernel-scalar-parity"
    summary = "vectorized kernels must declare a resolvable scalar fallback in the manifest"
    explanation = (
        "Every public module-level function of the manifest's kernel_modules "
        "must appear as a kernel in a [[rep003.pairs]] entry naming its "
        "scalar equivalence reference (the per-record code path it replaced, "
        "or the brute-force oracle in tests/property).  Both sides of every "
        "pair must resolve to real symbols — a rename or deletion that "
        "orphans a manifest entry is exactly the silent parity-rot this rule "
        "exists to catch.  Adding a kernel therefore means adding a manifest "
        "entry *and* the equivalence test it points at."
    )

    def finalize(self, project: Project) -> Iterable[Finding]:
        manifest = project.manifest
        declared = {pair.kernel for pair in manifest.parity_pairs}

        for relpath in manifest.kernel_modules:
            module = project.module(relpath)
            if module is None:
                continue
            for node in ast.iter_child_nodes(module.tree):
                if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if node.name.startswith("_"):
                    continue
                reference = f"{relpath}::{node.name}"
                if reference not in declared:
                    yield module.finding(
                        self,
                        node,
                        f"kernel function {node.name}() has no "
                        f"[[rep003.pairs]] entry; declare its scalar "
                        f"fallback in invariants.toml",
                    )

        for pair in manifest.parity_pairs:
            for side, reference in (("kernel", pair.kernel), ("fallback", pair.fallback)):
                if project.resolves(reference):
                    continue
                path, _, symbol = reference.partition("::")
                yield Finding(
                    code=self.code,
                    message=(
                        f"stale manifest {side} reference {reference!r}: "
                        f"symbol not found; update the [[rep003.pairs]] entry"
                    ),
                    path=path,
                    line=1,
                    column=0,
                    symbol=symbol,
                )
