"""Shared machinery for full-domain (single-dimensional global recoding) algorithms.

Incognito and the full-subtree bottom-up algorithm both explore level vectors
of the generalization lattice and repeatedly need the equivalence-class sizes
a level vector induces.  Recomputing generalized tuples record by record for
every candidate is prohibitively slow in Python, so :class:`FullDomainIndex`
pre-computes, per attribute and per level, an integer code for every record
and answers class-size queries with a single vectorised pass.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.datasets.dataset import Dataset
from repro.hierarchy.hierarchy import Hierarchy
from repro.hierarchy.lattice import GeneralizationLattice, LevelVector


class FullDomainIndex:
    """Pre-computed per-level value codes for fast k-anonymity checks."""

    def __init__(
        self,
        dataset: Dataset,
        lattice: GeneralizationLattice,
    ):
        self.lattice = lattice
        self.attributes = lattice.attributes
        self._n_records = len(dataset)
        # codes[attribute][level] -> np.ndarray of int codes per record
        self._codes: dict[str, list[np.ndarray]] = {}
        # label_count[attribute][level] -> number of distinct labels
        self._label_counts: dict[str, list[int]] = {}
        # labels[attribute][level] -> original value -> generalized label
        self._mappings: dict[str, list[dict]] = {}

        for attribute in self.attributes:
            hierarchy = lattice.hierarchies[attribute]
            column = dataset.column(attribute)
            distinct = sorted({value for value in column}, key=str)
            per_level_codes: list[np.ndarray] = []
            per_level_counts: list[int] = []
            per_level_mappings: list[dict] = []
            max_level = hierarchy.height
            for level in range(max_level + 1):
                mapping = {
                    value: hierarchy.generalize_to_level(str(value), level)
                    for value in distinct
                }
                labels = sorted(set(mapping.values()))
                label_code = {label: position for position, label in enumerate(labels)}
                codes = np.fromiter(
                    (label_code[mapping[value]] for value in column),
                    dtype=np.int64,
                    count=self._n_records,
                )
                per_level_codes.append(codes)
                per_level_counts.append(len(labels))
                per_level_mappings.append(mapping)
            self._codes[attribute] = per_level_codes
            self._label_counts[attribute] = per_level_counts
            self._mappings[attribute] = per_level_mappings

    # -- class structure -------------------------------------------------------
    def _keys(self, node: LevelVector) -> np.ndarray:
        """Mixed-radix record keys identifying each record's equivalence class."""
        keys = np.zeros(self._n_records, dtype=np.int64)
        for attribute, level in zip(self.attributes, node):
            level = min(level, len(self._codes[attribute]) - 1)
            keys = keys * self._label_counts[attribute][level] + self._codes[attribute][level]
        return keys

    def class_sizes(self, node: LevelVector) -> np.ndarray:
        """Sizes of the equivalence classes induced by the level vector."""
        if self._n_records == 0:
            return np.array([], dtype=np.int64)
        _, counts = np.unique(self._keys(node), return_counts=True)
        return counts

    def min_class_size(self, node: LevelVector) -> int:
        sizes = self.class_sizes(node)
        return int(sizes.min()) if sizes.size else 0

    def is_k_anonymous(self, node: LevelVector, k: int) -> bool:
        return self._n_records == 0 or self.min_class_size(node) >= k

    def number_of_classes(self, node: LevelVector) -> int:
        sizes = self.class_sizes(node)
        return int(sizes.size)

    def discernibility(self, node: LevelVector) -> int:
        sizes = self.class_sizes(node)
        return int((sizes.astype(np.int64) ** 2).sum())

    # -- application --------------------------------------------------------------
    def mapping_for(self, attribute: str, level: int) -> Mapping:
        """Original value -> generalized label mapping for one attribute level."""
        levels = self._mappings[attribute]
        return levels[min(level, len(levels) - 1)]

    def apply(self, dataset: Dataset, node: LevelVector) -> Dataset:
        """Return a copy of ``dataset`` generalized to the level vector."""
        result = dataset.copy(name=f"{dataset.name}[full-domain]")
        for attribute, level in zip(self.attributes, node):
            if level <= 0:
                continue
            mapping = self.mapping_for(attribute, level)
            result.map_column(attribute, lambda value, m=mapping: m.get(value, value))
        return result

    def loss_proxy(self, node: LevelVector) -> float:
        """A cheap information-loss proxy: mean normalised level height."""
        total = 0.0
        for attribute, level in zip(self.attributes, node):
            height = self.lattice.hierarchies[attribute].height or 1
            total += min(level, height) / height
        return total / len(self.attributes) if self.attributes else 0.0
