"""REP008: durability-discipline fixtures."""

from __future__ import annotations

from lint_harness import new_codes

from repro.analysis.core import rule_by_code
from repro.analysis.manifest import InvariantManifest

MANIFEST = InvariantManifest(
    durability_scope=("src/pkg/store",),
    atomic_helpers=("src/pkg/store/io.py::atomic_write_bytes",),
)

BARE_WRITE_OPEN = """
    def save(path, blob):
        with open(path, "wb") as handle:
            handle.write(blob)
"""

APPEND_OPEN = """
    def log(path, line):
        with open(path, "a") as handle:
            handle.write(line)
"""

MODE_KEYWORD = """
    def save(path, blob):
        with open(path, mode="w+b") as handle:
            handle.write(blob)
"""

DYNAMIC_MODE = """
    def save(path, blob, mode):
        with open(path, mode) as handle:
            handle.write(blob)
"""

FDOPEN_WRITE = """
    import os

    def save(fd, blob):
        with os.fdopen(fd, "wb") as handle:
            handle.write(blob)
"""

PATH_WRITERS = """
    def save(path, blob, text):
        path.write_bytes(blob)
        path.write_text(text)
"""

READ_ONLY = """
    def load(path):
        with open(path, "rb") as handle:
            first = handle.read()
        with open(path) as handle:  # default mode is read-only
            return first, handle.read()
"""

READ_HELPERS = """
    def load(path):
        return path.read_bytes(), path.read_text()
"""

ATOMIC_HELPER_BODY = """
    import os

    def atomic_write_bytes(path, blob):
        fd, temp = make_temp(path)
        with os.fdopen(fd, "wb") as handle:
            handle.write(blob)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp, path)
"""


class TestRep008:
    def test_bare_write_open_is_flagged(self, harness):
        findings = harness.findings(
            "src/pkg/store/cells.py",
            BARE_WRITE_OPEN,
            manifest=MANIFEST,
            select=["REP008"],
        )
        assert new_codes(findings) == ["REP008"]
        assert "atomic" in findings[0].message

    def test_append_mode_is_flagged(self, harness):
        findings = harness.findings(
            "src/pkg/store/cells.py",
            APPEND_OPEN,
            manifest=MANIFEST,
            select=["REP008"],
        )
        assert new_codes(findings) == ["REP008"]

    def test_mode_keyword_is_flagged(self, harness):
        findings = harness.findings(
            "src/pkg/store/cells.py",
            MODE_KEYWORD,
            manifest=MANIFEST,
            select=["REP008"],
        )
        assert new_codes(findings) == ["REP008"]

    def test_non_constant_mode_is_flagged(self, harness):
        """A mode that cannot be proven read-only counts as a write."""
        findings = harness.findings(
            "src/pkg/store/cells.py",
            DYNAMIC_MODE,
            manifest=MANIFEST,
            select=["REP008"],
        )
        assert new_codes(findings) == ["REP008"]

    def test_fdopen_write_is_flagged(self, harness):
        findings = harness.findings(
            "src/pkg/store/cells.py",
            FDOPEN_WRITE,
            manifest=MANIFEST,
            select=["REP008"],
        )
        assert new_codes(findings) == ["REP008"]

    def test_path_write_helpers_are_flagged(self, harness):
        findings = harness.findings(
            "src/pkg/store/cells.py",
            PATH_WRITERS,
            manifest=MANIFEST,
            select=["REP008"],
        )
        assert new_codes(findings) == ["REP008", "REP008"]

    def test_read_only_opens_are_clean(self, harness):
        assert (
            harness.findings(
                "src/pkg/store/cells.py",
                READ_ONLY,
                manifest=MANIFEST,
                select=["REP008"],
            )
            == []
        )

    def test_read_helpers_are_clean(self, harness):
        assert (
            harness.findings(
                "src/pkg/store/cells.py",
                READ_HELPERS,
                manifest=MANIFEST,
                select=["REP008"],
            )
            == []
        )

    def test_atomic_helper_body_is_exempt(self, harness):
        assert (
            harness.findings(
                "src/pkg/store/io.py",
                ATOMIC_HELPER_BODY,
                manifest=MANIFEST,
                select=["REP008"],
            )
            == []
        )

    def test_out_of_scope_module_is_ignored(self, harness):
        assert (
            harness.findings(
                "tools/scratch.py",
                BARE_WRITE_OPEN,
                manifest=MANIFEST,
                select=["REP008"],
            )
            == []
        )

    def test_inline_allow_with_reason_suppresses(self, harness):
        source = BARE_WRITE_OPEN.replace(
            'with open(path, "wb") as handle:',
            'with open(path, "wb") as handle:  '
            "# repro: allow[REP008] -- fixture: the torn write is the behaviour under test",
        )
        findings = harness.findings(
            "src/pkg/store/cells.py", source, manifest=MANIFEST, select=["REP008"]
        )
        assert new_codes(findings) == []

    def test_explain_text_exists(self):
        rule = rule_by_code("REP008")
        assert rule is not None
        assert rule.name == "durability-discipline"
        assert "atomic" in rule.explanation
