"""Micro-benchmark: the price and payoff of durable checkpointed sweeps.

The checkpoint store promises two numbers:

* **cold overhead** — what checkpointing adds to a run that gets no hits:
  key derivation (dataset fingerprint + config digests) plus one fsync'd
  atomic write per task.  Acceptance: under 5% of the full-size run's wall
  clock — durability may cost bookkeeping, never throughput.  The fraction
  is *attributed*, not differenced: an A/A calibration on CI-grade machines
  shows back-to-back identical 12-second legs differ by up to ±10%, so
  end-to-end subtraction cannot resolve a few-percent effect.  Instead the
  store accounts for its own machinery time (``CheckpointStore.stats``:
  pickling, framing, fsync'd writes, verified loads), key derivation is
  timed cold on a fresh dataset copy, and the bar is asserted on their sum
  over the cold leg's wall clock.  Paired wall-clock samples are still
  reported for context.
* **resume payoff** — re-running an 8-task comparison whose first (heavy)
  half already reached the store, the way a run killed mid-sweep leaves it:
  atomic renames mean "interrupted" is exactly "some cells missing", so the
  half-completed store is built by running the heavy half (the kill-path
  equivalence itself is pinned by ``tests/engine/test_checkpoint_resume.py``).
  Acceptance: at least 5x faster than recomputing from scratch, with
  byte-identical series.

The workload is the Comparison mode of the paper's Figure 4 at its most
checkpoint-worthy: eight configurations of very different cost — an RT
combination and three clustering runs (the heavy half that a crash would
throw away) ahead of four transaction-algorithm runs (the light half a
resume still has to pay for).  Writes ``BENCH_resume.json`` at the
repository root.

Run standalone (writes the trajectory file)::

    PYTHONPATH=src python benchmarks/bench_resume.py            # full 8k run
    PYTHONPATH=src python benchmarks/bench_resume.py --smoke    # small CI run

or through pytest (only collected when addressed explicitly)::

    python -m pytest benchmarks/bench_resume.py -m slow -s
"""

from __future__ import annotations

import json
import os
import statistics
import sys
import tempfile
import time
from pathlib import Path

import pytest

from repro.datasets import generate_rt_dataset
from repro.engine import (
    CheckpointStore,
    MethodComparator,
    ParameterSweep,
    relational_config,
    rt_config,
    transaction_config,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
TRAJECTORY_FILE = REPO_ROOT / "BENCH_resume.json"

N_RECORDS = 8_000
MAX_OVERHEAD_FRACTION = 0.05
MIN_RESUME_SPEEDUP = 5.0

SMOKE_KWARGS = dict(n_records=1_000)

SWEEP = ParameterSweep("k", (5,))

#: Heavy half first — the order a sequential comparison computes them, so a
#: crash after task 3 strands exactly these four in the store.
HEAVY_CONFIGS = [
    rt_config("cluster", "coat", k=5, m=2, delta=0.5),
    relational_config("cluster", k=5),
    relational_config("cluster", k=10),
    relational_config("cluster", k=25),
]
LIGHT_CONFIGS = [
    transaction_config("coat", k=5, m=2),
    transaction_config("coat", k=5, m=3),
    transaction_config("pcta", k=5, m=2),
    transaction_config("pcta", k=25, m=2),
]


def _fingerprint(comparison) -> list:
    """Every series value of every configuration (wall-clock excluded)."""
    return [
        [
            (report.utility, report.privacy, report.are)
            for report in sweep.reports
        ]
        for sweep in comparison.sweeps
    ]


def _compare(dataset, checkpoint=None, configurations=None):
    comparator = MethodComparator(dataset, checkpoint=checkpoint)
    start = time.perf_counter()
    result = comparator.compare(
        configurations if configurations is not None else HEAVY_CONFIGS + LIGHT_CONFIGS,
        SWEEP,
    )
    return result, time.perf_counter() - start


def _key_derivation_seconds(dataset, configurations, sweep) -> float:
    """Time deriving every checkpoint key of a comparison, from cold caches.

    A fresh dataset copy (no cached fingerprint) and freshly captured
    domains reproduce what the first key derivation of a real run pays:
    whole-configuration keys in the orchestrator plus per-sweep-point keys
    in every worker.
    """
    from repro.engine.checkpoint import configuration_keys, sweep_point_keys
    from repro.engine.experiment import DatasetDomains

    comparator = MethodComparator(dataset.copy())
    start = time.perf_counter()
    comparator.resources.domains = DatasetDomains.capture(comparator.dataset)
    configuration_keys(
        comparator.dataset,
        comparator.resources,
        comparator.verify_privacy,
        comparator.universe_mode,
        configurations,
        sweep,
    )
    for config in configurations:
        sweep_point_keys(
            comparator.dataset,
            comparator.resources,
            comparator.verify_privacy,
            comparator.universe_mode,
            config,
            sweep,
        )
    return time.perf_counter() - start


def run_benchmark(n_records: int = N_RECORDS, repeats: int = 3) -> dict:
    dataset = generate_rt_dataset(n_records=n_records, n_items=40, seed=2014)
    configurations = HEAVY_CONFIGS + LIGHT_CONFIGS

    # The asserted overhead is attributed, not differenced (see the module
    # docstring): per repeat, the store's own accounting of its machinery
    # time plus the cold key-derivation time, over that repeat's wall clock.
    # Paired plain/cold legs (order alternating) are still timed for
    # context.  Every checkpointed leg gets a fresh store directory: cold
    # means cold.
    plain_seconds, cold_seconds, wall_ratios, overhead_fractions = [], [], [], []
    cold_report = None
    key_seconds = _key_derivation_seconds(dataset, configurations, SWEEP)
    with tempfile.TemporaryDirectory() as scratch:
        for repeat in range(repeats):
            store = CheckpointStore(Path(scratch) / f"cold-{repeat}")
            if repeat % 2:
                cold_result, cold_s = _compare(dataset, checkpoint=store)
                plain_result, plain_s = _compare(dataset)
            else:
                plain_result, plain_s = _compare(dataset)
                cold_result, cold_s = _compare(dataset, checkpoint=store)
            plain_seconds.append(plain_s)
            cold_seconds.append(cold_s)
            wall_ratios.append(cold_s / plain_s)
            stats = store.stats
            overhead_fractions.append(
                (stats["seconds_storing"] + stats["seconds_loading"] + key_seconds)
                / cold_s
            )
            assert _fingerprint(cold_result) == _fingerprint(plain_result)
            cold_report = cold_result.run_report

        # The half-completed store: the heavy half reached disk before the
        # (simulated) kill; the resume pays only for the light half.
        half_store = CheckpointStore(Path(scratch) / "half")
        _compare(dataset, checkpoint=half_store, configurations=HEAVY_CONFIGS)
        resumed_result, resume_seconds = _compare(
            dataset, checkpoint=CheckpointStore(Path(scratch) / "half")
        )
        assert _fingerprint(resumed_result) == _fingerprint(plain_result)
        resume_report = resumed_result.run_report

    best_plain = min(plain_seconds)
    best_cold = min(cold_seconds)
    overhead = statistics.median(overhead_fractions)
    speedup = best_plain / resume_seconds
    return {
        "dataset": {
            "n_records": n_records,
            "n_tasks": len(configurations),
        },
        "plain_comparison": {"seconds": best_plain, "samples": plain_seconds},
        "cold_checkpointed": {
            "seconds": best_cold,
            "samples": cold_seconds,
            "paired_wall_ratios": wall_ratios,
            "key_derivation_seconds": key_seconds,
            "attributed_fractions": overhead_fractions,
            "checkpoints": cold_report.checkpoint_counts(),
        },
        "cold_overhead_fraction": overhead,
        "resume_half_completed": {
            "seconds": resume_seconds,
            "speedup_vs_recompute": speedup,
            "checkpoints": resume_report.checkpoint_counts(),
            "results_identical": True,
        },
    }


def write_trajectory(payload: dict) -> Path:
    TRAJECTORY_FILE.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return TRAJECTORY_FILE


@pytest.mark.slow
def test_resume_speedup_and_cold_overhead(record):
    payload = run_benchmark()
    record("resume", payload)
    write_trajectory(payload)
    assert payload["cold_overhead_fraction"] < MAX_OVERHEAD_FRACTION
    assert (
        payload["resume_half_completed"]["speedup_vs_recompute"]
        >= MIN_RESUME_SPEEDUP
    )


def test_resume_smoke(record):
    """Fast CI smoke: resume serves the heavy half and changes nothing.

    The 5%/5x bars are asserted only on the full-size run — at smoke scale
    each task is milliseconds and scheduler noise dominates both ratios.  In
    CI (``CI`` set) the small-size payload is written to
    ``BENCH_resume.json`` for the artifact upload; local test runs leave
    the committed full-size trajectory untouched.
    """
    payload = run_benchmark(**SMOKE_KWARGS, repeats=1)
    record("resume_smoke", payload)
    if os.environ.get("CI"):
        write_trajectory(payload)
    assert payload["cold_checkpointed"]["checkpoints"]["hit"] == 0
    resume = payload["resume_half_completed"]
    assert resume["results_identical"]
    assert resume["checkpoints"]["hit"] == len(HEAVY_CONFIGS)
    assert resume["checkpoints"]["corrupt"] == 0
    assert resume["speedup_vs_recompute"] > 1.0


def _print_summary(payload: dict) -> None:
    plain = payload["plain_comparison"]
    cold = payload["cold_checkpointed"]
    resume = payload["resume_half_completed"]
    print(
        f"dataset: {payload['dataset']['n_records']} records, "
        f"{payload['dataset']['n_tasks']} comparison tasks"
    )
    print(f"plain comparison:      {plain['seconds']:.3f}s")
    print(
        f"cold checkpointed:     {cold['seconds']:.3f}s "
        f"({payload['cold_overhead_fraction']:.1%} attributed overhead)"
    )
    print(
        f"resume (heavy half):   {resume['seconds']:.3f}s "
        f"({resume['speedup_vs_recompute']:.1f}x vs recompute, "
        f"{resume['checkpoints']['hit']} hits)"
    )


if __name__ == "__main__":
    kwargs = SMOKE_KWARGS if "--smoke" in sys.argv[1:] else {}
    result = run_benchmark(**kwargs)
    path = write_trajectory(result)
    _print_summary(result)
    print(f"trajectory written to {path}")
