"""Framework behavior: suppressions, baseline, registry, manifest loading."""

from __future__ import annotations

import json

import pytest

from lint_harness import new_codes

from repro.analysis.baseline import Baseline, BaselineEntry, fingerprint
from repro.analysis.core import Finding, Rule, all_rules, register, rule_by_code
from repro.analysis.manifest import DEFAULT_MANIFEST_PATH, InvariantManifest
from repro.exceptions import AnalysisError

# Built by concatenation so linting *this* file never sees a reason-less
# suppression comment on one source line.
_ALLOW = "# repro: " + "allow"

SWALLOWED = """
    def swallow():
        try:
            work()
        except Exception:
            pass
"""

SCOPED = InvariantManifest(exception_scope=("src/",))


class TestSuppressionHygiene:
    def test_reasonless_suppression_is_rep000(self, harness):
        source = f"x = 1  {_ALLOW}[REP005]\n"
        findings = harness.findings("src/mod.py", source)
        assert new_codes(findings) == ["REP000"]
        assert "without a reason" in findings[0].message

    def test_unknown_code_is_rep000(self, harness):
        source = f"x = 1  {_ALLOW}[BOGUS1] -- because\n"
        findings = harness.findings("src/mod.py", source)
        assert new_codes(findings) == ["REP000"]
        assert "unknown" in findings[0].message

    def test_rep000_cannot_be_suppressed(self, harness):
        source = (
            f"{_ALLOW}[REP000] -- hush\n"  # standalone: would cover next line
            f"x = 1  {_ALLOW}[REP005]\n"
        )
        findings = harness.findings("src/mod.py", source)
        assert any(f.code == "REP000" and f.is_new for f in findings)

    def test_rep000_runs_even_under_select(self, harness):
        source = f"x = 1  {_ALLOW}[REP005]\n"
        findings = harness.findings("src/mod.py", source, select=["REP004"])
        assert new_codes(findings) == ["REP000"]

    def test_syntax_error_becomes_rep000(self, harness):
        findings = harness.findings("src/mod.py", "def broken(:\n")
        assert new_codes(findings) == ["REP000"]
        assert "does not parse" in findings[0].message

    def test_suppression_of_other_code_does_not_apply(self, harness):
        source = SWALLOWED.replace(
            "except Exception:",
            "except Exception:  # repro: allow[REP001] -- wrong code",
        )
        findings = harness.findings(
            "src/mod.py", source, manifest=SCOPED, select=["REP005"]
        )
        assert new_codes(findings) == ["REP005"]


class TestBaseline:
    def _finding_and_line(self, harness):
        harness.write("src/mod.py", SWALLOWED)
        report = harness.lint("src", manifest=SCOPED, select=["REP005"])
        (finding,) = report.findings
        line_text = (harness.root / "src/mod.py").read_text().splitlines()[
            finding.line - 1
        ]
        return finding, line_text

    def test_round_trip_and_match(self, harness, tmp_path):
        finding, line_text = self._finding_and_line(harness)
        baseline = Baseline.from_findings([(finding, line_text)], reason="legacy")
        path = tmp_path / "baseline.json"
        baseline.save(path)
        loaded = Baseline.load(path)
        assert len(loaded) == 1
        entry = loaded.lookup(fingerprint(finding, line_text=line_text))
        assert entry is not None
        assert entry.reason == "legacy"
        assert entry.code == "REP005"

    def test_fingerprint_survives_line_drift_but_not_edits(self, harness):
        finding, line_text = self._finding_and_line(harness)
        original = fingerprint(finding, line_text=line_text)
        # Same content at a different line number: same fingerprint.
        from dataclasses import replace

        shifted = replace(finding, line=finding.line + 10)
        assert fingerprint(shifted, line_text=line_text) == original
        # Whitespace-only change: same fingerprint.
        assert fingerprint(finding, line_text="  " + line_text + "  ") == original
        # The offending line itself changed: the entry expires.
        assert fingerprint(finding, line_text="except BaseException:") != original

    def test_missing_file_is_empty(self, tmp_path):
        assert len(Baseline.load(tmp_path / "nope.json")) == 0

    def test_bad_version_raises(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "entries": []}))
        with pytest.raises(AnalysisError, match="version"):
            Baseline.load(path)

    def test_malformed_entry_raises(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(
            json.dumps({"version": 1, "entries": [{"code": "REP001"}]})
        )
        with pytest.raises(AnalysisError, match="missing"):
            Baseline.load(path)

    def test_save_is_deterministic(self, tmp_path):
        entries = [
            BaselineEntry("bb", "REP002", "src/b.py", "f", "why"),
            BaselineEntry("aa", "REP001", "src/a.py", "g", "why"),
        ]
        first, second = tmp_path / "one.json", tmp_path / "two.json"
        Baseline(entries).save(first)
        Baseline(reversed(entries)).save(second)
        assert first.read_text() == second.read_text()


class TestRegistry:
    def test_all_rules_covers_every_rep_code(self):
        codes = {rule.code for rule in all_rules()}
        assert codes == {
            "REP000",
            "REP001",
            "REP002",
            "REP003",
            "REP004",
            "REP005",
            "REP006",
            "REP007",
            "REP008",
            "REP009",
            "REP010",
            "REP011",
        }

    def test_rule_by_code_is_case_insensitive(self):
        assert rule_by_code("rep004").code == "REP004"

    def test_unknown_code_raises(self):
        with pytest.raises(AnalysisError, match="unknown rule code"):
            rule_by_code("REP999")

    def test_duplicate_code_rejected(self):
        class Imposter(Rule):
            code = "REP001"
            name = "imposter"

        with pytest.raises(AnalysisError, match="duplicate"):
            register(Imposter)

    def test_every_rule_has_summary_and_explanation(self):
        for rule in all_rules():
            assert rule.summary, rule.code
            assert len(rule.explanation) > 80, rule.code

    def test_select_unknown_rule_raises(self, harness):
        harness.write("src/mod.py", "x = 1\n")
        with pytest.raises(AnalysisError, match="unknown rule"):
            harness.lint("src", select=["REP999"])


class TestManifest:
    def test_packaged_manifest_loads(self):
        manifest = InvariantManifest.load()
        assert DEFAULT_MANIFEST_PATH.exists()
        assert manifest.parity_pairs
        assert manifest.hot_modules
        assert "run_many" in manifest.worker_calls
        assert manifest.worker_calls["run_many"].process_only is False

    def test_bad_worker_call_entry_rejected(self):
        with pytest.raises(AnalysisError, match="worker_calls"):
            InvariantManifest.from_mapping(
                {"rep006": {"worker_calls": {"run_many": {"arg": -1}}}}
            )

    def test_pair_without_fallback_rejected(self):
        with pytest.raises(AnalysisError, match="fallback"):
            InvariantManifest.from_mapping(
                {"rep003": {"pairs": [{"kernel": "src/a.py::f"}]}}
            )

    def test_missing_manifest_file_raises(self, tmp_path):
        with pytest.raises(AnalysisError, match="cannot read"):
            InvariantManifest.load(tmp_path / "absent.toml")


class TestFindingModel:
    def test_is_new_reflects_escape_hatches(self):
        finding = Finding("REP001", "m", "src/a.py", 1, 0)
        assert finding.is_new
        from dataclasses import replace

        assert not replace(finding, suppressed=True).is_new
        assert not replace(finding, baselined=True).is_new

    def test_nonexistent_path_raises(self, harness):
        with pytest.raises(AnalysisError, match="no such path"):
            harness.lint("missing_dir")
