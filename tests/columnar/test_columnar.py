"""Unit tests for the columnar layer: vocabulary, CSR column, bitset kernels."""

import numpy as np
import pytest

from repro.columnar import (
    ItemVocabulary,
    TransactionColumn,
    bitset_from_indices,
    empty_bitset,
    indices_of,
    popcount,
    popcount_rows,
    posting_matrix,
    union_rows,
    word_count,
)
from repro.datasets import Attribute, Dataset, Schema
from repro.exceptions import SchemaError


def make_transactions(baskets) -> Dataset:
    schema = Schema([Attribute.transaction("Items")])
    return Dataset(schema, [{"Items": basket} for basket in baskets])


class TestBitsetKernels:
    def test_word_count_boundaries(self):
        assert word_count(0) == 0
        assert word_count(1) == 1
        assert word_count(64) == 1
        assert word_count(65) == 2
        assert word_count(4096) == 64
        assert word_count(4097) == 65

    @pytest.mark.parametrize("n_bits", [0, 1, 63, 64, 65, 128, 4095, 4096, 4200])
    def test_pack_unpack_roundtrip(self, n_bits):
        rng = np.random.default_rng(n_bits)
        members = sorted(
            rng.choice(n_bits, size=min(n_bits, 17), replace=False).tolist()
        ) if n_bits else []
        bits = bitset_from_indices(members, n_bits)
        assert indices_of(bits).tolist() == members
        assert popcount(bits) == len(members)

    def test_boundary_bits_survive(self):
        # The first/last bit of a word are the classic off-by-one victims.
        members = [0, 63, 64, 127, 128, 4095, 4096]
        bits = bitset_from_indices(members, 4200)
        assert indices_of(bits).tolist() == members

    def test_empty_bitset(self):
        assert popcount(empty_bitset(300)) == 0
        assert indices_of(empty_bitset(300)).size == 0

    def test_union_rows(self):
        matrix = posting_matrix([0, 0, 1, 2], [1, 5, 2, 5], 3, 70)
        assert indices_of(union_rows(matrix, [0, 1])).tolist() == [1, 2, 5]
        assert indices_of(union_rows(matrix, [2])).tolist() == [5]
        assert popcount(union_rows(matrix, [])) == 0
        # Single-row unions return a copy, never a view into the matrix.
        single = union_rows(matrix, [0])
        single |= np.uint64(0xFF)
        assert indices_of(matrix[0]).tolist() == [1, 5]

    def test_popcount_rows_matches_per_row_popcount(self):
        rng = np.random.default_rng(3)
        matrix = rng.integers(0, 2**64, size=(5, 7), dtype=np.uint64)
        expected = [popcount(matrix[row]) for row in range(5)]
        assert popcount_rows(matrix).tolist() == expected


class TestItemVocabulary:
    def test_sorted_tokenization(self):
        vocabulary = ItemVocabulary(["pear", "apple", "pear", "fig"])
        assert vocabulary.items == ("apple", "fig", "pear")
        assert vocabulary.token("fig") == 1
        assert vocabulary.item(2) == "pear"
        assert len(vocabulary) == 3
        assert "apple" in vocabulary and "kiwi" not in vocabulary

    def test_unknown_items(self):
        vocabulary = ItemVocabulary(["a", "b"])
        assert vocabulary.token("z") is None
        assert vocabulary.tokens_for(["a", "z", "b"]).tolist() == [0, 1]

    def test_universe_is_fresh_copy(self):
        vocabulary = ItemVocabulary(["a"])
        universe = vocabulary.universe()
        universe.add("b")
        assert vocabulary.universe() == {"a"}


class TestTransactionColumn:
    def test_csr_layout(self):
        dataset = make_transactions([["b", "a"], [], ["c"], ["a", "c"]])
        column = TransactionColumn.from_dataset(dataset)
        assert column.n_records == 4
        assert column.total_items == 5
        assert column.row_lengths().tolist() == [2, 0, 1, 2]
        items = column.vocabulary.items
        assert {items[t] for t in column.row_tokens(0)} == {"a", "b"}
        assert column.row_tokens(1).size == 0

    def test_bitset_postings_match_record_scan(self):
        dataset = make_transactions([["a", "b"], ["b"], ["a", "c"], ["c"], ["b"]])
        column = TransactionColumn.from_dataset(dataset)
        postings = column.bitset_postings()
        for token, item in enumerate(column.vocabulary.items):
            expected = [
                position
                for position, record in enumerate(dataset)
                if item in record["Items"]
            ]
            assert indices_of(postings[token]).tolist() == expected

    def test_occurrence_join_pairs_every_source_occurrence(self):
        source = TransactionColumn.from_dataset(
            make_transactions([["a", "b"], ["c"], ["a"], []])
        )
        target = TransactionColumn.from_dataset(
            make_transactions([["x"], ["x", "y"], [], ["y"]])
        )
        flat, segment_starts, unpaired = target.occurrence_join(source)
        # Record 2's occurrence of "a" has no target labels; record 3 has no
        # source occurrences at all.
        assert unpaired == 1
        # Paired occurrences: ("a",0), ("b",0) with 1 label; ("c",1) with 2.
        assert segment_starts.tolist() == [0, 1, 2]
        width = len(source.vocabulary)
        decoded = [
            (
                target.vocabulary.item(int(code) // width),
                source.vocabulary.item(int(code) % width),
            )
            for code in flat
        ]
        # Occurrence and within-record label order follow frozenset iteration
        # order, so compare contents, not positions.
        assert sorted(decoded[:2]) == [("x", "a"), ("x", "b")]
        assert sorted(decoded[2:]) == [("x", "c"), ("y", "c")]
        # Cached per source column; a different source rebuilds.
        assert target.occurrence_join(source) is target.occurrence_join(source)

    def test_empty_dataset(self):
        dataset = make_transactions([])
        column = TransactionColumn.from_dataset(dataset)
        assert column.n_records == 0
        assert column.total_items == 0
        assert column.bitset_postings().shape == (0, 0)
        flat, segment_starts, unpaired = column.occurrence_join(column)
        assert flat.size == 0 and segment_starts.size == 0 and unpaired == 0


class TestDatasetIntegration:
    def test_columnar_is_cached_until_mutation(self):
        dataset = make_transactions([["a", "b"], ["b"]])
        first = dataset.columnar()
        assert dataset.columnar() is first
        dataset.set_value(0, "Items", ["c"])
        assert dataset.columnar() is not first
        assert dataset.item_universe() == {"b", "c"}

    def test_item_universe_reuses_vocabulary(self):
        dataset = make_transactions([["a", "b"], ["c"]])
        dataset.columnar()
        universe = dataset.item_universe()
        assert universe == {"a", "b", "c"}
        # The returned set is a fresh copy, not the vocabulary itself.
        universe.add("z")
        assert dataset.item_universe() == {"a", "b", "c"}

    def test_columnar_dispatches_on_attribute_kind(self):
        from repro.columnar import CategoricalColumn, NumericColumn

        schema = Schema(
            [
                Attribute.categorical("City"),
                Attribute.numeric("Age"),
                Attribute.transaction("Items"),
            ]
        )
        dataset = Dataset(
            schema, [{"City": "Athens", "Age": 30, "Items": ["a"]}]
        )
        assert isinstance(dataset.columnar("Items"), TransactionColumn)
        assert isinstance(dataset.columnar("City"), CategoricalColumn)
        assert isinstance(dataset.columnar("Age"), NumericColumn)
        with pytest.raises(SchemaError):
            dataset.columnar("Missing")

    def test_append_invalidates(self):
        dataset = make_transactions([["a"]])
        dataset.columnar()
        dataset.append({"Items": ["b"]})
        assert dataset.item_universe() == {"a", "b"}
        assert dataset.columnar().n_records == 2
