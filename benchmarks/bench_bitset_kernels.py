"""Micro-benchmark: bitset/columnar kernel speedup over the PR 1 hot paths.

Measures the two kernel families the bitset/columnar layer (PR 2) rewrote,
on a 50k-record market-basket dataset:

* **constraint support** — the COAT/PCTA inner loop: per-group posting
  unions intersected across a privacy constraint's item groups, re-evaluated
  across generalization rounds as the groups widen.  Baseline: the PR 1
  ``frozenset`` inverted index with memoized unions, restated verbatim.
* **transaction metrics** — ``utility_loss`` and
  ``estimated_item_frequencies``.  Baseline: the PR 1 per-record loops over
  the memoized interpreter aggregates, restated verbatim.  Both sides are
  measured steady-state (interpreter caches and columnar views warm), which
  is the engine's regime: one experiment evaluates the metrics many times
  over the same dataset pair.

Besides asserting the >= 5x acceptance bar, the run writes a machine-readable
``BENCH_bitset.json`` at the repository root (records/s and speedups per
workload) so the repo carries a perf trajectory file.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_bitset_kernels.py

or through pytest (only collected when addressed explicitly)::

    python -m pytest benchmarks/bench_bitset_kernels.py -m slow -s
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.datasets import Dataset, generate_market_basket
from repro.index import InvertedIndex, interpreter_for
from repro.metrics import estimated_item_frequencies, utility_loss

REPO_ROOT = Path(__file__).resolve().parent.parent
TRAJECTORY_FILE = REPO_ROOT / "BENCH_bitset.json"

N_RECORDS = 50_000
N_ITEMS = 200
GROUP_SIZE = 4
N_CONSTRAINTS = 120
REQUIRED_SPEEDUP = 5.0


# -- PR 1 baselines (restated verbatim) -----------------------------------------
class FrozensetIndex:
    """The PR 1 inverted index: frozenset postings, memoized set unions."""

    def __init__(self, dataset: Dataset, attribute: str = "Items"):
        raw: dict[str, set[int]] = {}
        for position, record in enumerate(dataset):
            for item in record[attribute]:
                raw.setdefault(item, set()).add(position)
        self._postings = {item: frozenset(records) for item, records in raw.items()}
        self._unions: dict[frozenset, frozenset[int]] = {}

    def union(self, items) -> frozenset[int]:
        key = items if isinstance(items, frozenset) else frozenset(items)
        cached = self._unions.get(key)
        if cached is not None:
            return cached
        combined: set[int] = set()
        for item in key:
            combined |= self._postings.get(item, frozenset())
        result = frozenset(combined)
        self._unions[key] = result
        return result

    def joint_support(self, groups) -> int:
        covering = None
        for group in groups:
            records = self.union(group)
            covering = records if covering is None else covering & records
            if not covering:
                return 0
        return len(covering) if covering is not None else 0


def pr1_utility_loss(original: Dataset, anonymized: Dataset, interpreter) -> float:
    """The PR 1 utility-loss loop: per-record dict lookups over the interpreter."""
    total_items = sum(len(record["Items"]) for record in original)
    if total_items == 0:
        return 0.0
    loss = 0.0
    for original_record, anonymized_record in zip(original, anonymized):
        source_items = original_record["Items"]
        if not source_items:
            continue
        best_costs = interpreter.best_costs(anonymized_record["Items"])
        for item in source_items:
            loss += best_costs.get(item, 1.0)
    return loss / total_items


def pr1_estimated_frequencies(anonymized: Dataset, universe, interpreter) -> dict:
    """The PR 1 frequency estimator: per-record weight accumulation."""
    estimates = {item: 0.0 for item in universe}
    for record in anonymized:
        for item, weight in interpreter.frequency_weights(record["Items"]).items():
            if item in estimates:
                estimates[item] += weight
    return estimates


# -- workload construction -------------------------------------------------------
def build_constraints(items: list[str], seed: int = 2014) -> list[tuple[str, str]]:
    """Deterministic 2-item privacy constraints over the item universe."""
    constraints = []
    state = seed
    for _ in range(N_CONSTRAINTS):
        state = (state * 1103515245 + 12345) % 2**31
        first = items[state % len(items)]
        state = (state * 1103515245 + 12345) % 2**31
        second = items[state % len(items)]
        if first != second:
            constraints.append((first, second))
    return constraints


def generalization_rounds(items: list[str]) -> list[dict[str, frozenset[str]]]:
    """Three COAT-style rounds: each item's group widens (1, GROUP_SIZE, 2x)."""
    rounds = []
    for width in (1, GROUP_SIZE, 2 * GROUP_SIZE):
        groups: dict[str, frozenset[str]] = {}
        for start in range(0, len(items), width):
            members = frozenset(items[start : start + width])
            for item in members:
                groups[item] = members
        rounds.append(groups)
    return rounds


def constraint_support_workload(index, constraints, rounds) -> int:
    """Re-evaluate every constraint's support across the generalization rounds."""
    checksum = 0
    for groups in rounds:
        for first, second in constraints:
            checksum += index.joint_support([groups[first], groups[second]])
    return checksum


def anonymize_by_groups(dataset: Dataset, group_size: int) -> Dataset:
    """COAT/PCTA-style output: fixed group labels plus a suppressed tail."""
    items = sorted(dataset.item_universe("Items"))
    groups = [items[n : n + group_size] for n in range(0, len(items), group_size)]
    mapping: dict[str, str | None] = {}
    for position, group in enumerate(groups):
        label = "(" + ",".join(group) + ")" if len(group) > 1 else group[0]
        for item in group:
            mapping[item] = None if position == len(groups) - 1 else label
    anonymized = dataset.copy(name=f"{dataset.name}[grouped]")
    anonymized.map_column(
        "Items",
        lambda itemset: [
            mapping[item] for item in itemset if mapping[item] is not None
        ],
    )
    return anonymized


def timed_best(function, *args, repeats: int = 3):
    """(result, best-of-``repeats`` wall time) for a steady-state measurement."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = function(*args)
        best = min(best, time.perf_counter() - start)
    return result, best


# -- main -------------------------------------------------------------------------
def run_benchmark() -> dict:
    original = generate_market_basket(
        n_records=N_RECORDS, n_items=N_ITEMS, seed=2014
    )
    anonymized = anonymize_by_groups(original, GROUP_SIZE)
    items = sorted(original.item_universe("Items"))
    constraints = build_constraints(items)
    rounds = generalization_rounds(items)

    # Constraint support: index build + three rounds of support re-evaluation,
    # fresh caches per measurement (the COAT/PCTA regime: every run builds its
    # index once, then unions change as generalization widens the groups).
    def baseline_support():
        index = FrozensetIndex(original)
        return constraint_support_workload(index, constraints, rounds)

    def bitset_support():
        index = InvertedIndex.from_dataset(original, "Items")
        return constraint_support_workload(index, constraints, rounds)

    original.columnar("Items")  # warm: the engine builds it once per dataset
    baseline_checksum, baseline_support_seconds = timed_best(baseline_support)
    bitset_checksum, bitset_support_seconds = timed_best(bitset_support)
    assert baseline_checksum == bitset_checksum

    # Transaction metrics, steady-state: interpreter caches and columnar views
    # warm on both sides.
    universe = original.item_universe("Items")
    interpreter = interpreter_for(None, universe)
    anonymized.columnar("Items")

    baseline_ul, baseline_ul_seconds = timed_best(
        pr1_utility_loss, original, anonymized, interpreter
    )
    indexed_ul, indexed_ul_seconds = timed_best(
        utility_loss, original, anonymized, "Items"
    )
    baseline_fe, baseline_fe_seconds = timed_best(
        pr1_estimated_frequencies, anonymized, universe, interpreter
    )
    indexed_fe, indexed_fe_seconds = timed_best(
        estimated_item_frequencies, anonymized, universe, "Items"
    )

    assert indexed_ul == pytest.approx(baseline_ul)
    for item in universe:
        assert indexed_fe[item] == pytest.approx(baseline_fe[item])

    evaluations = len(rounds) * len(constraints)
    metric_baseline = baseline_ul_seconds + baseline_fe_seconds
    metric_bitset = indexed_ul_seconds + indexed_fe_seconds
    return {
        "dataset": {
            "n_records": N_RECORDS,
            "n_items": N_ITEMS,
            "group_size": GROUP_SIZE,
            "n_constraints": len(constraints),
            "generalization_rounds": len(rounds),
        },
        "constraint_support": {
            "baseline_seconds": baseline_support_seconds,
            "bitset_seconds": bitset_support_seconds,
            "speedup": baseline_support_seconds / bitset_support_seconds,
            "baseline_records_per_second": N_RECORDS
            * evaluations
            / baseline_support_seconds,
            "bitset_records_per_second": N_RECORDS
            * evaluations
            / bitset_support_seconds,
        },
        "utility_loss": {
            "value": indexed_ul,
            "baseline_seconds": baseline_ul_seconds,
            "bitset_seconds": indexed_ul_seconds,
            "speedup": baseline_ul_seconds / indexed_ul_seconds,
            "baseline_records_per_second": N_RECORDS / baseline_ul_seconds,
            "bitset_records_per_second": N_RECORDS / indexed_ul_seconds,
        },
        "item_frequencies": {
            "baseline_seconds": baseline_fe_seconds,
            "bitset_seconds": indexed_fe_seconds,
            "speedup": baseline_fe_seconds / indexed_fe_seconds,
            "baseline_records_per_second": N_RECORDS / baseline_fe_seconds,
            "bitset_records_per_second": N_RECORDS / indexed_fe_seconds,
        },
        "metrics_combined_speedup": metric_baseline / metric_bitset,
    }


def write_trajectory(payload: dict) -> Path:
    TRAJECTORY_FILE.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return TRAJECTORY_FILE


@pytest.mark.slow
def test_bitset_kernel_speedup(record):
    payload = run_benchmark()
    record("bitset_kernels", payload)
    write_trajectory(payload)
    assert payload["constraint_support"]["speedup"] >= REQUIRED_SPEEDUP
    assert payload["utility_loss"]["speedup"] >= REQUIRED_SPEEDUP
    assert payload["metrics_combined_speedup"] >= REQUIRED_SPEEDUP


def test_bitset_kernel_equivalence_smoke():
    """Fast CI smoke: the benchmark workloads agree on a small dataset."""
    original = generate_market_basket(n_records=2_000, n_items=60, seed=7)
    anonymized = anonymize_by_groups(original, GROUP_SIZE)
    items = sorted(original.item_universe("Items"))
    constraints = build_constraints(items)[:30]
    rounds = generalization_rounds(items)
    baseline = constraint_support_workload(
        FrozensetIndex(original), constraints, rounds
    )
    bitset = constraint_support_workload(
        InvertedIndex.from_dataset(original, "Items"), constraints, rounds
    )
    assert baseline == bitset
    universe = original.item_universe("Items")
    interpreter = interpreter_for(None, universe)
    assert utility_loss(original, anonymized, "Items") == pytest.approx(
        pr1_utility_loss(original, anonymized, interpreter)
    )


if __name__ == "__main__":
    result = run_benchmark()
    path = write_trajectory(result)
    support = result["constraint_support"]
    ul = result["utility_loss"]
    frequencies = result["item_frequencies"]
    print(
        f"dataset: {result['dataset']['n_records']} records, "
        f"{result['dataset']['n_items']} items"
    )
    print(
        f"constraint support: baseline {support['baseline_seconds']:.3f}s, "
        f"bitset {support['bitset_seconds']:.3f}s, "
        f"speedup {support['speedup']:.1f}x"
    )
    print(
        f"utility loss:       baseline {ul['baseline_seconds']:.3f}s, "
        f"bitset {ul['bitset_seconds']:.3f}s, speedup {ul['speedup']:.1f}x"
    )
    print(
        f"item frequencies:   baseline {frequencies['baseline_seconds']:.3f}s, "
        f"bitset {frequencies['bitset_seconds']:.3f}s, "
        f"speedup {frequencies['speedup']:.1f}x"
    )
    print(f"trajectory written to {path}")
