"""REP003: kernel/scalar parity manifest fixtures."""

from __future__ import annotations

from lint_harness import new_codes

from repro.analysis.manifest import InvariantManifest, ParityPair

KERNELS = """
    def fast_sum(values):
        return vectorized_sum(values)

    def _helper(values):
        return values
"""

FALLBACKS = """
    def slow_sum(values):
        total = 0
        for value in values:
            total += value
        return total
"""


def manifest(*pairs: ParityPair) -> InvariantManifest:
    return InvariantManifest(
        kernel_modules=("src/pkg/kernels.py",), parity_pairs=tuple(pairs)
    )


class TestRep003:
    def test_declared_pair_is_clean(self, harness):
        harness.write("src/pkg/kernels.py", KERNELS)
        harness.write("src/pkg/scalar.py", FALLBACKS)
        report = harness.lint(
            "src",
            manifest=manifest(
                ParityPair(
                    kernel="src/pkg/kernels.py::fast_sum",
                    fallback="src/pkg/scalar.py::slow_sum",
                )
            ),
            select=["REP003"],
        )
        assert report.findings == []

    def test_undeclared_kernel_is_flagged(self, harness):
        harness.write("src/pkg/kernels.py", KERNELS)
        report = harness.lint("src", manifest=manifest(), select=["REP003"])
        assert new_codes(report.findings) == ["REP003"]
        assert "fast_sum" in report.findings[0].message
        # Private helpers need no declaration.
        assert all("_helper" not in f.message for f in report.findings)

    def test_stale_fallback_reference_is_flagged(self, harness):
        harness.write("src/pkg/kernels.py", KERNELS)
        report = harness.lint(
            "src",
            manifest=manifest(
                ParityPair(
                    kernel="src/pkg/kernels.py::fast_sum",
                    fallback="src/pkg/scalar.py::renamed_away",
                )
            ),
            select=["REP003"],
        )
        messages = [f.message for f in report.findings if f.is_new]
        assert len(messages) == 1
        assert "renamed_away" in messages[0]
        assert "stale" in messages[0]

    def test_fallback_outside_analyzed_paths_still_resolves(self, harness):
        harness.write("src/pkg/kernels.py", KERNELS)
        harness.write("tests/oracles.py", FALLBACKS)
        report = harness.lint(
            "src",  # tests/ is NOT linted, but the reference must resolve
            manifest=manifest(
                ParityPair(
                    kernel="src/pkg/kernels.py::fast_sum",
                    fallback="tests/oracles.py::slow_sum",
                )
            ),
            select=["REP003"],
        )
        assert report.findings == []

    def test_repo_manifest_pairs_all_resolve(self, harness):
        """The committed invariants.toml must reference real symbols."""
        import pathlib

        from repro.analysis.core import analyze_paths

        repo_root = pathlib.Path(__file__).resolve().parents[2]
        report = analyze_paths(
            ["src/repro/columnar"], root=repo_root, select=["REP003"]
        )
        stale = [f for f in report.findings if "stale" in f.message]
        assert stale == []
