"""REP009: interprocedural resource-escape fixtures.

Includes the acceptance proof for this rule's reason to exist: a leak that
REP001's scope-local guard heuristics cannot see (the scope *contains* a
handler that cleans and re-raises, so REP001 calls it guarded) but whose
raising path REP009's path-sensitive analysis correctly flags.
"""

from __future__ import annotations

from lint_harness import new_codes

from repro.analysis.manifest import InvariantManifest

MANIFEST = InvariantManifest.from_mapping(
    {
        "rep001": {"cleanup_helpers": ["_release"]},
        "rep009": {
            "scope": [""],
            "acquisition_calls": ["mkstemp"],
            "cleanup_sinks": ["close", "unlink", "replace", "_release"],
        },
    }
)

#: The raising call ``encode_header`` sits BEFORE the try block: on that
#: path the segment leaks.  REP001 sees a handler that calls the cleanup
#: helper and re-raises, judges the scope guarded, and stays silent.
LEAK_BEFORE_TRY = """
    from multiprocessing.shared_memory import SharedMemory

    def _release(segment):
        segment.close()
        segment.unlink()

    def export(payload):
        seg = SharedMemory(create=True, size=1024)
        header = encode_header(payload)
        try:
            copy_in(seg, payload, header)
        except ValueError:
            _release(seg)
            raise
        _release(seg)
"""

CLEAN_TRY_FINALLY = """
    from multiprocessing.shared_memory import SharedMemory

    def _release(segment):
        segment.close()
        segment.unlink()

    def export(payload):
        seg = SharedMemory(create=True, size=1024)
        try:
            header = encode_header(payload)
            copy_in(seg, payload, header)
        finally:
            _release(seg)
"""

MKSTEMP_LEAK = """
    import os
    from tempfile import mkstemp

    def stage(data):
        fd, path = mkstemp()
        os.write(fd, serialize(data))
        os.close(fd)
        os.replace(path, target_for(data))
"""

#: ``finally`` is the pattern REP009 accepts: an ``except OSError`` that
#: unlinks and re-raises would still leak on exceptions the handler does
#: not match (the analysis keeps the unmatched-exception bypass edge).
MKSTEMP_CLEAN = """
    import os
    from tempfile import mkstemp

    def stage(data):
        fd, path = mkstemp()
        try:
            os.write(fd, serialize(data))
        finally:
            os.close(fd)
            os.unlink(path)
"""

RETURNED_RESOURCE = """
    from multiprocessing.shared_memory import SharedMemory

    def create(size):
        return SharedMemory(create=True, size=size)
"""

ADOPTED_WITH_CLOSER = """
    from multiprocessing.shared_memory import SharedMemory

    class Holder:
        def __init__(self, size):
            self.segment = SharedMemory(create=True, size=size)

        def close(self):
            self.segment.close()
            self.segment.unlink()
"""

ADOPTED_WITHOUT_CLOSER = """
    from multiprocessing.shared_memory import SharedMemory

    class Hoarder:
        def __init__(self, size):
            self.segment = SharedMemory(create=True, size=size)
            prepare(self.segment)

        def describe(self):
            return self.segment.name
"""


class TestRep009:
    def test_leak_on_raising_path_before_try(self, harness):
        findings = harness.findings(
            "src/mod.py", LEAK_BEFORE_TRY, manifest=MANIFEST, select=["REP009"]
        )
        assert new_codes(findings) == ["REP009"]
        assert "cleanup sink" in findings[0].message
        assert findings[0].symbol == "export"

    def test_try_finally_is_clean(self, harness):
        findings = harness.findings(
            "src/mod.py", CLEAN_TRY_FINALLY, manifest=MANIFEST, select=["REP009"]
        )
        assert new_codes(findings) == []

    def test_the_leak_is_invisible_to_rep001(self, harness):
        """The acceptance proof: both rules on the same fixture."""
        findings = harness.findings(
            "src/mod.py",
            LEAK_BEFORE_TRY,
            manifest=MANIFEST,
            select=["REP001", "REP009"],
        )
        assert new_codes(findings) == ["REP009"]

    def test_clean_fixture_passes_both_rules(self, harness):
        findings = harness.findings(
            "src/mod.py",
            CLEAN_TRY_FINALLY,
            manifest=MANIFEST,
            select=["REP001", "REP009"],
        )
        assert new_codes(findings) == []

    def test_mkstemp_raise_between_write_and_replace_leaks(self, harness):
        findings = harness.findings(
            "src/mod.py", MKSTEMP_LEAK, manifest=MANIFEST, select=["REP009"]
        )
        assert new_codes(findings) == ["REP009"]

    def test_mkstemp_with_finally_cleanup_is_clean(self, harness):
        findings = harness.findings(
            "src/mod.py", MKSTEMP_CLEAN, manifest=MANIFEST, select=["REP009"]
        )
        assert new_codes(findings) == []

    def test_returning_the_resource_is_ownership_transfer(self, harness):
        findings = harness.findings(
            "src/mod.py", RETURNED_RESOURCE, manifest=MANIFEST, select=["REP009"]
        )
        assert new_codes(findings) == []

    def test_adoption_with_a_cleaning_method_is_clean(self, harness):
        findings = harness.findings(
            "src/mod.py", ADOPTED_WITH_CLOSER, manifest=MANIFEST, select=["REP009"]
        )
        assert new_codes(findings) == []

    def test_adoption_without_any_cleaning_method_leaks(self, harness):
        findings = harness.findings(
            "src/mod.py",
            ADOPTED_WITHOUT_CLOSER,
            manifest=MANIFEST,
            select=["REP009"],
        )
        assert new_codes(findings) == ["REP009"]

    def test_suppression_applies(self, harness):
        source = LEAK_BEFORE_TRY.replace(
            "seg = SharedMemory(create=True, size=1024)",
            "seg = SharedMemory(create=True, size=1024)"
            "  # repro: allow[REP009] -- fixture exercises the leak",
        )
        findings = harness.findings(
            "src/mod.py", source, manifest=MANIFEST, select=["REP009"]
        )
        assert new_codes(findings) == []
        assert any(f.suppressed for f in findings)

    def test_out_of_scope_module_is_ignored(self, harness):
        scoped = InvariantManifest.from_mapping(
            {
                "rep009": {
                    "scope": ["src/"],
                    "acquisition_calls": [],
                    "cleanup_sinks": ["close", "unlink", "_release"],
                }
            }
        )
        findings = harness.findings(
            "tools/mod.py", LEAK_BEFORE_TRY, manifest=scoped, select=["REP009"]
        )
        assert new_codes(findings) == []
