"""The Method Evaluator: SECRETA's Evaluation mode.

Given a dataset, prepared resources and one configuration, the evaluator runs
the configured algorithm(s) and derives every indicator the Evaluation screen
can plot:

* ARE of the query workload on the anonymized data,
* information-loss measures for the relational side (GCP, discernibility,
  average class size) and the transaction side (UL, item-frequency error),
* the privacy status (minimum class size, k^m / (k, k^m) verification),
* total and per-phase runtime,
* the frequency of generalized values per relational attribute and the
  relative error of transaction item frequencies (the Figure 3 plots).
"""

from __future__ import annotations

from repro.attacks.simulator import AttackResult, item_attack, qi_attack, rt_attack
from repro.datasets.dataset import Dataset
from repro.datasets.statistics import generalized_value_frequencies
from repro.engine.anonymizer import AnonymizationModule
from repro.engine.config import AnonymizationConfig
from repro.engine.resources import ExperimentResources
from repro.engine.results import EvaluationReport
from repro.metrics.privacy_checks import (
    k_km_violations,
    k_violations,
    km_violations,
    min_class_size,
)
from repro.metrics.relational import (
    average_class_size,
    discernibility_metric,
    global_certainty_penalty,
    quasi_identifier_attributes,
)
from repro.metrics.transaction import (
    average_item_frequency_error,
    item_frequency_error,
    utility_loss,
)
from repro.queries.are import average_relative_error


class MethodEvaluator:
    """Evaluate a single anonymization configuration (Evaluation mode)."""

    def __init__(
        self,
        dataset: Dataset,
        resources: ExperimentResources | None = None,
        verify_privacy: bool = True,
        km_check_limit: int = 128,
        universe_mode: str = "original",
        simulate_attacks: bool = False,
        attack_knowledge_cap: int | None = None,
    ) -> None:
        self.dataset = dataset
        self.resources = resources or ExperimentResources()
        self.verify_privacy = verify_privacy
        #: Whether to additionally play the prior-knowledge adversary against
        #: every anonymized output (:mod:`repro.attacks`) and report the
        #: empirical guarantees alongside the analytic privacy status.
        self.simulate_attacks = simulate_attacks
        #: Cap on the number of item combinations probed per distinct basket
        #: during attack simulation (``None`` = exhaustive); results note
        #: truncation so a capped attack is never mistaken for a proof.
        self.attack_knowledge_cap = attack_knowledge_cap
        #: How ARE resolves generalized labels: ``"original"`` keys the query
        #: interpreters by the original dataset's attribute domains (captured
        #: in the resources at prepare time), making ARE consistent with the
        #: utility-loss charging rule on root-generalized outputs;
        #: ``"seed"`` keeps the hierarchy-only resolution (the regression
        #: reference).
        self.universe_mode = universe_mode
        #: k^m / (k,k^m) verification enumerates item combinations, so it is
        #: skipped (reported as ``None``) when the item universe exceeds this
        #: limit, exactly like a GUI would avoid freezing on huge data.  The
        #: bitset-backed checker (one AND + popcount per combination, with
        #: zero-support pruning) verifies far larger universes than the
        #: per-record scans it replaced, so the default is generous.
        self.km_check_limit = km_check_limit

    # -- indicator computation ----------------------------------------------------
    def _relational_attributes(self, config: AnonymizationConfig) -> list[str]:
        if config.relational_attributes is not None:
            return list(config.relational_attributes)
        return quasi_identifier_attributes(self.dataset)

    def _transaction_attribute(self, config: AnonymizationConfig) -> str | None:
        if config.transaction_attribute:
            return config.transaction_attribute
        names = self.dataset.schema.transaction_names
        return names[0] if names else None

    def _utility_indicators(
        self, config: AnonymizationConfig, anonymized: Dataset
    ) -> dict[str, float]:
        indicators: dict[str, float] = {}
        if config.relational_algorithm is not None:
            attributes = self._relational_attributes(config)
            indicators["relational_gcp"] = global_certainty_penalty(
                self.dataset, anonymized, attributes, self.resources.hierarchies
            )
            indicators["discernibility"] = float(
                discernibility_metric(anonymized, attributes)
            )
            indicators["average_class_size"] = average_class_size(
                anonymized, config.k, attributes
            )
        transaction_attribute = self._transaction_attribute(config)
        if config.transaction_algorithm is not None and transaction_attribute:
            indicators["transaction_ul"] = utility_loss(
                self.dataset,
                anonymized,
                attribute=transaction_attribute,
                hierarchy=self.resources.item_hierarchy,
            )
            indicators["item_frequency_error"] = average_item_frequency_error(
                self.dataset,
                anonymized,
                attribute=transaction_attribute,
                hierarchy=self.resources.item_hierarchy,
            )
        return indicators

    def _privacy_status(
        self, config: AnonymizationConfig, anonymized: Dataset
    ) -> dict:
        status: dict = {"k": config.k}
        attributes = self._relational_attributes(config)
        transaction_attribute = self._transaction_attribute(config)
        universe = (
            self.dataset.item_universe(transaction_attribute)
            if transaction_attribute
            else set()
        )
        km_feasible = len(universe) <= self.km_check_limit
        if config.relational_algorithm is not None:
            status["min_class_size"] = min_class_size(anonymized, attributes)
            k_witnesses = (
                k_violations(anonymized, config.k, attributes, max_violations=1)
                if len(anonymized)
                else []
            )
            status["k_anonymous"] = not k_witnesses
            if k_witnesses:
                status["k_witness"] = k_witnesses[0]
        if config.transaction_algorithm is not None and transaction_attribute:
            status["m"] = config.m
            if not self.verify_privacy or not km_feasible:
                status["km_anonymous"] = None
            elif config.mode == "rt":
                witnesses = k_km_violations(
                    anonymized,
                    config.k,
                    config.m,
                    relational_attributes=attributes,
                    transaction_attribute=transaction_attribute,
                    hierarchy=self.resources.item_hierarchy,
                    universe=universe,
                    max_violations=1,
                )
                status["k_km_anonymous"] = not witnesses
                if witnesses:
                    status["k_km_witness"] = witnesses[0]
            else:
                km_witnesses = km_violations(
                    anonymized,
                    config.k,
                    config.m,
                    attribute=transaction_attribute,
                    hierarchy=self.resources.item_hierarchy,
                    universe=universe,
                    max_violations=1,
                )
                status["km_anonymous"] = not km_witnesses
                if km_witnesses:
                    status["km_witness"] = km_witnesses[0]
        return status

    def _attack_status(
        self, config: AnonymizationConfig, anonymized: Dataset
    ) -> dict[str, AttackResult]:
        """Simulated re-identification attacks matching the configuration.

        Each adversary is played only where the configuration makes a
        promise: a QI-matching adversary when a relational algorithm ran, an
        item-knowledge adversary (``m`` known items) when a transaction
        algorithm ran, and the combined adversary for RT mode.
        """
        attacks: dict[str, AttackResult] = {}
        attributes = self._relational_attributes(config)
        transaction_attribute = self._transaction_attribute(config)
        if config.relational_algorithm is not None and attributes:
            attacks["qi"] = qi_attack(
                self.dataset,
                anonymized,
                attributes=attributes,
                hierarchies=self.resources.hierarchies,
            )
        if config.transaction_algorithm is not None and transaction_attribute:
            attacks["item"] = item_attack(
                self.dataset,
                anonymized,
                config.m,
                attribute=transaction_attribute,
                hierarchy=self.resources.item_hierarchy,
                knowledge_cap=self.attack_knowledge_cap,
            )
        if config.mode == "rt" and attributes and transaction_attribute:
            attacks["rt"] = rt_attack(
                self.dataset,
                anonymized,
                config.m,
                relational_attributes=attributes,
                transaction_attribute=transaction_attribute,
                hierarchies=self.resources.hierarchies,
                item_hierarchy=self.resources.item_hierarchy,
                knowledge_cap=self.attack_knowledge_cap,
            )
        return attacks

    # -- main -------------------------------------------------------------------------
    def evaluate(self, config: AnonymizationConfig) -> EvaluationReport:
        """Run the configuration and compute every Evaluation-mode indicator."""
        module = AnonymizationModule(self.dataset, self.resources)
        result = module.run(config)
        anonymized = result.dataset

        transaction_attribute = self._transaction_attribute(config)
        hierarchies = self.resources.hierarchies_with_items(transaction_attribute)
        if self.resources.workload is None:
            # A dataset with nothing to query gets no generated workload;
            # ARE is simply not computable then, rather than a crash.
            are = None
        else:
            are = average_relative_error(
                self.resources.workload,
                self.dataset,
                anonymized,
                hierarchies=hierarchies,
                domains=self.resources.domains,
                universe_mode=self.universe_mode,
            ).are

        generalized_frequencies = {}
        if config.relational_algorithm is not None:
            for attribute in self._relational_attributes(config):
                generalized_frequencies[attribute] = generalized_value_frequencies(
                    anonymized, attribute
                )
        item_errors: dict[str, float] = {}
        if config.transaction_algorithm is not None and transaction_attribute:
            item_errors = item_frequency_error(
                self.dataset,
                anonymized,
                attribute=transaction_attribute,
                hierarchy=self.resources.item_hierarchy,
            )

        return EvaluationReport(
            configuration=config.describe(),
            result=result,
            utility=self._utility_indicators(config, anonymized),
            privacy=self._privacy_status(config, anonymized),
            are=are,
            runtime_seconds=result.runtime_seconds,
            phase_seconds=dict(result.phase_seconds),
            generalized_value_frequencies=generalized_frequencies,
            item_frequency_errors=item_errors,
            attacks=(
                self._attack_status(config, anonymized)
                if self.simulate_attacks
                else {}
            ),
        )
