"""Privacy policies for constraint-based transaction anonymization.

COAT and PCTA do not use generalization hierarchies; instead the data
publisher expresses *privacy constraints*: itemsets that an attacker may know
and that must therefore not identify fewer than ``k`` transactions.  A privacy
policy is a collection of such constraints together with the protection level
``k``: the anonymized dataset must support every constraint either in at
least ``k`` transactions or not at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.datasets.dataset import Dataset
from repro.exceptions import PolicyError


@dataclass(frozen=True)
class PrivacyConstraint:
    """An itemset that must not isolate fewer than ``k`` records.

    The constraint is satisfied by an anonymized dataset when the number of
    records whose (possibly generalized) itemsets could contain *all* items of
    the constraint is either zero or at least the policy's ``k``.
    """

    items: frozenset[str]

    def __init__(self, items: Iterable[str]):
        object.__setattr__(self, "items", frozenset(str(item) for item in items))
        if not self.items:
            raise PolicyError("a privacy constraint needs at least one item")

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self.items))

    def __repr__(self) -> str:
        return f"PrivacyConstraint({sorted(self.items)})"


class PrivacyPolicy:
    """A set of privacy constraints plus the protection threshold ``k``."""

    def __init__(self, constraints: Iterable[PrivacyConstraint | Iterable[str]], k: int):
        if k < 2:
            raise PolicyError("the protection level k must be at least 2")
        self.k = int(k)
        self._constraints: list[PrivacyConstraint] = []
        seen: set[frozenset[str]] = set()
        for constraint in constraints:
            if not isinstance(constraint, PrivacyConstraint):
                constraint = PrivacyConstraint(constraint)
            if constraint.items in seen:
                continue
            seen.add(constraint.items)
            self._constraints.append(constraint)

    def __len__(self) -> int:
        return len(self._constraints)

    def __iter__(self) -> Iterator[PrivacyConstraint]:
        return iter(self._constraints)

    def __repr__(self) -> str:
        return f"PrivacyPolicy(k={self.k}, constraints={len(self._constraints)})"

    @property
    def constraints(self) -> list[PrivacyConstraint]:
        return list(self._constraints)

    @property
    def protected_items(self) -> set[str]:
        """All items mentioned by at least one constraint."""
        items: set[str] = set()
        for constraint in self._constraints:
            items.update(constraint.items)
        return items

    def max_constraint_size(self) -> int:
        return max((len(c) for c in self._constraints), default=0)

    # -- evaluation -----------------------------------------------------------
    def constraint_support(
        self,
        dataset: Dataset,
        constraint: PrivacyConstraint,
        attribute: str | None = None,
        item_mapping: dict[str, str] | None = None,
    ) -> int:
        """Number of records that (could) support ``constraint``.

        ``item_mapping`` maps original items to their generalized
        representation (identity when omitted); suppressed items map to
        ``None`` and can never be supported.
        """
        attribute = attribute or dataset.single_transaction_attribute()
        mapped: set[str] = set()
        for item in constraint.items:
            image = item_mapping.get(item, item) if item_mapping else item
            if image is None:
                return 0
            mapped.add(image)
        support = 0
        for record in dataset:
            if mapped <= record[attribute]:
                support += 1
        return support

    def violations(
        self,
        dataset: Dataset,
        attribute: str | None = None,
        item_mapping: dict[str, str] | None = None,
    ) -> list[tuple[PrivacyConstraint, int]]:
        """Constraints whose support is positive but below ``k``."""
        result = []
        for constraint in self._constraints:
            support = self.constraint_support(
                dataset, constraint, attribute=attribute, item_mapping=item_mapping
            )
            if 0 < support < self.k:
                result.append((constraint, support))
        return result

    def is_satisfied_by(
        self,
        dataset: Dataset,
        attribute: str | None = None,
        item_mapping: dict[str, str] | None = None,
    ) -> bool:
        """Whether the anonymized ``dataset`` satisfies every constraint."""
        return not self.violations(dataset, attribute=attribute, item_mapping=item_mapping)
