"""REP011: kernel dtype-contract fixtures."""

from __future__ import annotations

from lint_harness import new_codes

from repro.analysis.manifest import InvariantManifest

MANIFEST = InvariantManifest.from_mapping(
    {
        "rep011": {
            "contracts": [
                {
                    "function": "src/kernels.py::popcount",
                    "param": "bits",
                    "dtype": "uint64",
                },
                {
                    "function": "src/kernels.py::Column.__init__",
                    "param": "indptr",
                    "dtype": "int64",
                },
            ]
        }
    }
)

KERNELS = """
    import numpy as np

    def popcount(bits):
        return int(np.bitwise_count(bits).sum())

    class Column:
        def __init__(self, indptr, values):
            self.indptr = indptr
            self.values = values
"""

WRONG_INLINE = KERNELS + """
    def caller(n):
        return popcount(np.zeros(n, dtype=np.int32))
"""

WRONG_VIA_DEFINITION = KERNELS + """
    def caller(n):
        bits = np.zeros(n, dtype=np.int32)
        return popcount(bits)
"""

RIGHT_DTYPE = KERNELS + """
    def caller(n):
        bits = np.zeros(n, dtype=np.uint64)
        return popcount(bits)
"""

UNKNOWN_DTYPE = KERNELS + """
    def caller(source):
        bits = load(source)
        return popcount(bits)
"""

WRONG_CONSTRUCTOR_KEYWORD = KERNELS + """
    def build(n):
        return Column(indptr=np.zeros(n + 1, dtype=np.int32), values=n)
"""

RIGHT_VIA_ASTYPE = KERNELS + """
    def build(offsets, n):
        return Column(offsets.astype(np.int64), n)
"""


class TestRep011:
    def test_wrong_inline_dtype_is_flagged(self, harness):
        findings = harness.findings(
            "src/kernels.py", WRONG_INLINE, manifest=MANIFEST, select=["REP011"]
        )
        assert new_codes(findings) == ["REP011"]
        assert "uint64" in findings[0].message

    def test_wrong_dtype_found_through_reaching_definition(self, harness):
        findings = harness.findings(
            "src/kernels.py",
            WRONG_VIA_DEFINITION,
            manifest=MANIFEST,
            select=["REP011"],
        )
        assert new_codes(findings) == ["REP011"]
        # The message cites where the offending array was constructed.
        assert "int32" in findings[0].message

    def test_right_dtype_is_clean(self, harness):
        findings = harness.findings(
            "src/kernels.py", RIGHT_DTYPE, manifest=MANIFEST, select=["REP011"]
        )
        assert new_codes(findings) == []

    def test_statically_unknown_dtype_is_never_a_finding(self, harness):
        findings = harness.findings(
            "src/kernels.py", UNKNOWN_DTYPE, manifest=MANIFEST, select=["REP011"]
        )
        assert new_codes(findings) == []

    def test_constructor_keyword_argument_is_checked(self, harness):
        findings = harness.findings(
            "src/kernels.py",
            WRONG_CONSTRUCTOR_KEYWORD,
            manifest=MANIFEST,
            select=["REP011"],
        )
        assert new_codes(findings) == ["REP011"]
        assert "int64" in findings[0].message

    def test_astype_satisfies_the_contract(self, harness):
        findings = harness.findings(
            "src/kernels.py", RIGHT_VIA_ASTYPE, manifest=MANIFEST, select=["REP011"]
        )
        assert new_codes(findings) == []

    def test_stale_contract_reference_is_flagged(self, harness):
        stale = InvariantManifest.from_mapping(
            {
                "rep011": {
                    "contracts": [
                        {
                            "function": "src/kernels.py::vanished",
                            "param": "bits",
                            "dtype": "uint64",
                        }
                    ]
                }
            }
        )
        findings = harness.findings(
            "src/kernels.py", KERNELS, manifest=stale, select=["REP011"]
        )
        assert new_codes(findings) == ["REP011"]
        assert "vanished" in findings[0].message

    def test_contract_missing_field_rejected(self):
        import pytest

        from repro.exceptions import AnalysisError

        with pytest.raises(AnalysisError, match="rep011"):
            InvariantManifest.from_mapping(
                {"rep011": {"contracts": [{"function": "a.py::f"}]}}
            )
