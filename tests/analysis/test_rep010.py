"""REP010: stale-snapshot dataflow fixtures."""

from __future__ import annotations

from lint_harness import new_codes

from repro.analysis.manifest import InvariantManifest

MANIFEST = InvariantManifest.from_mapping(
    {
        "rep010": {
            "scope": [""],
            "snapshot_sources": ["columnar", "capture", "fingerprint"],
            "mutators": ["_set", "_delete", "_rename"],
        }
    }
)

USE_AFTER_MUTATE = """
    def sweep(dataset, value):
        view = dataset.columnar("age")
        dataset._set(0, "age", value)
        return view.codes
"""

MUTATE_THEN_SNAPSHOT = """
    def sweep(dataset, value):
        dataset._set(0, "age", value)
        view = dataset.columnar("age")
        return view.codes
"""

USE_BEFORE_MUTATE = """
    def sweep(dataset, value):
        view = dataset.columnar("age")
        size = len(view.codes)
        dataset._set(0, "age", value)
        return size
"""

STALE_ON_ONE_BRANCH = """
    def sweep(dataset, value, dirty):
        view = dataset.columnar("age")
        if dirty:
            dataset._set(0, "age", value)
        return view.codes
"""

FINGERPRINT_ACROSS_MUTATION = """
    def checkpoint(dataset, value):
        stamp = dataset.fingerprint()
        dataset._delete(0)
        record(stamp)
"""

INTERPROCEDURAL_MUTATOR = """
    def scrub(dataset):
        dataset._rename("age", "years")

    def sweep(dataset):
        view = dataset.columnar("age")
        scrub(dataset)
        return view.codes
"""

OTHER_OBJECT_MUTATED = """
    def sweep(dataset, scratch, value):
        view = dataset.columnar("age")
        scratch._set(0, "age", value)
        return view.codes
"""


class TestRep010:
    def test_snapshot_used_after_mutation_is_stale(self, harness):
        findings = harness.findings(
            "src/mod.py", USE_AFTER_MUTATE, manifest=MANIFEST, select=["REP010"]
        )
        assert new_codes(findings) == ["REP010"]
        assert "view" in findings[0].message

    def test_mutate_then_snapshot_is_clean(self, harness):
        findings = harness.findings(
            "src/mod.py", MUTATE_THEN_SNAPSHOT, manifest=MANIFEST, select=["REP010"]
        )
        assert new_codes(findings) == []

    def test_use_before_mutation_is_clean(self, harness):
        findings = harness.findings(
            "src/mod.py", USE_BEFORE_MUTATE, manifest=MANIFEST, select=["REP010"]
        )
        assert new_codes(findings) == []

    def test_mutation_on_one_branch_still_flags_the_join(self, harness):
        findings = harness.findings(
            "src/mod.py", STALE_ON_ONE_BRANCH, manifest=MANIFEST, select=["REP010"]
        )
        assert new_codes(findings) == ["REP010"]

    def test_fingerprint_is_a_snapshot_source_too(self, harness):
        findings = harness.findings(
            "src/mod.py",
            FINGERPRINT_ACROSS_MUTATION,
            manifest=MANIFEST,
            select=["REP010"],
        )
        assert new_codes(findings) == ["REP010"]

    def test_mutation_through_a_project_helper_is_seen(self, harness):
        findings = harness.findings(
            "src/mod.py",
            INTERPROCEDURAL_MUTATOR,
            manifest=MANIFEST,
            select=["REP010"],
        )
        assert new_codes(findings) == ["REP010"]
        assert findings[0].symbol == "sweep"

    def test_mutating_a_different_object_is_clean(self, harness):
        findings = harness.findings(
            "src/mod.py", OTHER_OBJECT_MUTATED, manifest=MANIFEST, select=["REP010"]
        )
        assert new_codes(findings) == []

    def test_suppression_applies(self, harness):
        source = USE_AFTER_MUTATE.replace(
            "return view.codes",
            "return view.codes  # repro: allow[REP010] -- refresh tested below",
        )
        findings = harness.findings(
            "src/mod.py", source, manifest=MANIFEST, select=["REP010"]
        )
        assert new_codes(findings) == []
        assert any(f.suppressed for f in findings)
