"""Tests for the crash-safe segment registry (`repro.columnar.registry`).

The registry is the piece of the fault-tolerance story that ``weakref``
finalizers cannot cover: a process killed by SIGKILL never runs cleanup, so
segment ownership is written *ahead* of creation to a per-pid sidecar file
and a startup reaper unlinks whatever dead processes left behind.

Every test points ``$REPRO_SHM_REGISTRY`` at a private tmp directory so
concurrent suites (and the developer's own live pools) are invisible to it.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import textwrap
from multiprocessing import resource_tracker, shared_memory
from pathlib import Path

import pytest

from repro.columnar.registry import (
    REGISTRY_ENV,
    clear_segment,
    new_segment_name,
    reap_orphaned_segments,
    register_segment,
    registry_dir,
)
from repro.engine.pool import WorkerPool

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture
def registry(monkeypatch, tmp_path):
    """An isolated sidecar directory for the duration of one test."""
    monkeypatch.setenv(REGISTRY_ENV, str(tmp_path))
    return tmp_path


def segment_exists(name: str) -> bool:
    """Probe for a segment without leaking a resource-tracker registration."""
    try:
        segment = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    segment.close()
    # Attaching registered the name with this process's tracker (Python
    # <= 3.12); balance it so interpreter shutdown stays quiet.
    resource_tracker.unregister(segment._name, "shared_memory")
    return True


def dead_pid() -> int:
    """A pid guaranteed not to name a live process: a child that exited."""
    proc = subprocess.Popen([sys.executable, "-c", "pass"])
    proc.wait()
    return proc.pid


class TestSidecarRoundTrip:
    def test_register_appends_and_clear_removes(self, registry):
        first, second = new_segment_name(), new_segment_name()
        register_segment(first)
        register_segment(second)
        sidecar = registry / f"{os.getpid()}.segments"
        assert sidecar.read_text().splitlines() == [first, second]

        clear_segment(first)
        assert sidecar.read_text().splitlines() == [second]
        clear_segment(second)
        assert not sidecar.exists()  # empty sidecars are deleted outright

    def test_clear_without_sidecar_is_a_noop(self, registry):
        clear_segment("repro_never_registered")

    def test_names_embed_the_owning_pid(self, registry):
        assert new_segment_name().startswith(f"repro_{os.getpid()}_")

    def test_registry_dir_honours_the_env_override(self, registry):
        assert registry_dir() == registry


class TestReaper:
    def test_reaper_leaves_live_owners_alone(self, registry):
        # Our own sidecar plus one owned by a live child process.
        register_segment("repro_fake_own")
        child = subprocess.Popen(
            [sys.executable, "-c", "import time; time.sleep(60)"]
        )
        try:
            (registry / f"{child.pid}.segments").write_text("repro_fake_child\n")
            assert reap_orphaned_segments() == []
            assert (registry / f"{os.getpid()}.segments").exists()
            assert (registry / f"{child.pid}.segments").exists()
        finally:
            child.kill()
            child.wait()
        clear_segment("repro_fake_own")

    def test_reaper_unlinks_segments_of_a_dead_owner(self, registry):
        name = new_segment_name()
        # repro: allow[REP001] -- deliberately unguarded: this segment plays the orphan and the reaper unlinking it is the assertion
        segment = shared_memory.SharedMemory(name=name, create=True, size=64)
        segment.close()
        # The segment is real; now hand its ownership record to a dead pid.
        resource_tracker.unregister(segment._name, "shared_memory")
        sidecar = registry / f"{dead_pid()}.segments"
        sidecar.write_text(f"{name}\n")

        assert reap_orphaned_segments() == [name]
        assert not segment_exists(name)
        assert not sidecar.exists()

    def test_registered_but_never_created_reaps_to_nothing(self, registry):
        # The crash window between register and create: the sidecar entry
        # must be treated as already-cleaned, not an error.
        sidecar = registry / f"{dead_pid()}.segments"
        sidecar.write_text(f"{new_segment_name()}\n")
        assert reap_orphaned_segments() == []
        assert not sidecar.exists()

    def test_non_numeric_sidecars_are_ignored(self, registry):
        (registry / "garbage.segments").write_text("repro_fake\n")
        assert reap_orphaned_segments() == []
        assert (registry / "garbage.segments").exists()

    def test_worker_pool_reaps_at_startup(self, registry):
        name = new_segment_name()
        # repro: allow[REP001] -- deliberately unguarded: the WorkerPool's startup reaper unlinking this orphan is the assertion
        segment = shared_memory.SharedMemory(name=name, create=True, size=64)
        segment.close()
        resource_tracker.unregister(segment._name, "shared_memory")
        (registry / f"{dead_pid()}.segments").write_text(f"{name}\n")

        with WorkerPool(max_workers=1) as pool:
            assert name in pool.reaped_at_startup
        assert not segment_exists(name)


class TestSigkillEndToEnd:
    def test_segment_orphaned_by_sigkill_is_reaped(self, registry):
        """The scenario the registry exists for, end to end.

        A disposable child registers a segment, creates it, and dies by
        SIGKILL before any cleanup can run.  The child disables its own
        resource tracker first: pool workers inherit the parent's tracker
        pipe, so in the real crash scenario the tracker never reclaims the
        segment either — the no-op reproduces that faithfully in a child
        the test can safely kill.
        """
        script = textwrap.dedent(
            """
            import os, signal
            from multiprocessing import resource_tracker, shared_memory

            resource_tracker.register = lambda *args, **kwargs: None

            from repro.columnar.registry import new_segment_name, register_segment

            name = new_segment_name()
            register_segment(name)
            shared_memory.SharedMemory(name=name, create=True, size=128)
            print(name, flush=True)
            os.kill(os.getpid(), signal.SIGKILL)
            """
        )
        env = dict(os.environ)
        env[REGISTRY_ENV] = str(registry)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env=env,
            timeout=60,
        )
        assert proc.returncode == -signal.SIGKILL, proc.stderr
        name = proc.stdout.strip()
        assert name.startswith("repro_")

        # The orphan survived the kill...
        assert segment_exists(name)
        sidecars = list(registry.glob("*.segments"))
        assert len(sidecars) == 1

        # ...and the reaper reclaims it.
        assert reap_orphaned_segments() == [name]
        assert not segment_exists(name)
        assert list(registry.glob("*.segments")) == []
